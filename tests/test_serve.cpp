// Unit tests for the src/serve service layer: the exhaustive trap->error
// mapping, admission control, batching bit-identity, exact billing, and
// fault isolation.  Suite names carry the "Serve" prefix so the CI thread
// sanitizer job picks them up (`ctest -R "...|Serve"`).

#include <cstdint>
#include <future>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "check/fault_injection.hpp"
#include "serve/service.hpp"
#include "sim/tenant_ledger.hpp"
#include "svm/svm.hpp"

namespace {

using rvvsvm::check::FaultInjector;
using rvvsvm::serve::ErrorCode;
using rvvsvm::serve::Kind;
using rvvsvm::serve::Request;
using rvvsvm::serve::Response;
using rvvsvm::serve::ScanService;
using rvvsvm::serve::Value;
using rvvsvm::sim::TrapKind;

ScanService::Config foreground_config(unsigned harts = 2) {
  ScanService::Config cfg;
  cfg.harts = harts;
  cfg.background = false;
  return cfg;
}

Request make_request(Kind kind, std::vector<Value> data,
                     rvvsvm::sim::TenantId tenant = 1) {
  Request req;
  req.tenant = tenant;
  req.kind = kind;
  req.data = std::move(data);
  if (kind == Kind::kCompress) {
    req.flags.assign(req.data.size(), Value{1});
    for (std::size_t i = 0; i < req.flags.size(); i += 2) req.flags[i] = 0;
  }
  if (kind == Kind::kHistogram) {
    req.bins = 8;
    for (Value& v : req.data) v %= 8;
  }
  return req;
}

std::vector<Value> iota_values(std::size_t n) {
  std::vector<Value> v(n);
  std::iota(v.begin(), v.end(), Value{1});
  return v;
}

// --- the exhaustive trap taxonomy mapping (ISSUE 7 satellite) ---------------

TEST(ServeErrorCodes, EveryTrapKindRoundTrips) {
  for (std::size_t k = 0; k < rvvsvm::sim::kNumTrapKinds; ++k) {
    const TrapKind kind = static_cast<TrapKind>(k);
    const ErrorCode code = rvvsvm::serve::error_code(kind);
    EXPECT_NE(code, ErrorCode::kOk) << rvvsvm::sim::to_string(kind);
    const auto back = rvvsvm::serve::trap_kind(code);
    ASSERT_TRUE(back.has_value()) << rvvsvm::sim::to_string(kind);
    EXPECT_EQ(*back, kind) << rvvsvm::sim::to_string(kind);
    EXPECT_STRNE(rvvsvm::serve::to_string(code), "?");
  }
}

TEST(ServeErrorCodes, TrapKindsMapToDistinctCodes) {
  std::vector<ErrorCode> seen;
  for (std::size_t k = 0; k < rvvsvm::sim::kNumTrapKinds; ++k) {
    const ErrorCode code =
        rvvsvm::serve::error_code(static_cast<TrapKind>(k));
    for (const ErrorCode prior : seen) EXPECT_NE(code, prior);
    seen.push_back(code);
  }
}

TEST(ServeErrorCodes, NonTrapCodesHaveNoTrapKind) {
  EXPECT_FALSE(rvvsvm::serve::trap_kind(ErrorCode::kOk).has_value());
  EXPECT_FALSE(rvvsvm::serve::trap_kind(ErrorCode::kQueueFull).has_value());
  EXPECT_FALSE(
      rvvsvm::serve::trap_kind(ErrorCode::kBudgetExceeded).has_value());
  EXPECT_FALSE(rvvsvm::serve::trap_kind(ErrorCode::kMalformed).has_value());
  EXPECT_FALSE(rvvsvm::serve::trap_kind(ErrorCode::kShutdown).has_value());
  EXPECT_FALSE(rvvsvm::serve::trap_kind(ErrorCode::kWorkerCrash).has_value());
  // ISSUE 10 overload codes: only kDeadlineExceeded has a trap behind it.
  EXPECT_FALSE(
      rvvsvm::serve::trap_kind(ErrorCode::kDeadlineUnmeetable).has_value());
  EXPECT_FALSE(rvvsvm::serve::trap_kind(ErrorCode::kShedOverload).has_value());
  EXPECT_FALSE(
      rvvsvm::serve::trap_kind(ErrorCode::kTenantQuarantined).has_value());
}

TEST(ServeErrorCodes, DeadlineTrapRoundTripsAndCodesStayStable) {
  EXPECT_EQ(rvvsvm::serve::error_code(TrapKind::kDeadlineExceeded),
            ErrorCode::kDeadlineExceeded);
  const auto back = rvvsvm::serve::trap_kind(ErrorCode::kDeadlineExceeded);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, TrapKind::kDeadlineExceeded);
  // The wire codes are append-only contract values.
  EXPECT_EQ(static_cast<int>(ErrorCode::kDeadlineExceeded), 13);
  EXPECT_EQ(static_cast<int>(ErrorCode::kDeadlineUnmeetable), 14);
  EXPECT_EQ(static_cast<int>(ErrorCode::kShedOverload), 15);
  EXPECT_EQ(static_cast<int>(ErrorCode::kTenantQuarantined), 16);
}

// --- the tenant ledger -------------------------------------------------------

TEST(ServeTenantLedger, ChargesAccumulatePerTenant) {
  rvvsvm::sim::TenantLedger ledger;
  rvvsvm::sim::InstCounter counter;
  counter.add(rvvsvm::sim::InstClass::kVectorArith, 5);
  ledger.charge(1, counter.snapshot());
  ledger.charge(1, counter.snapshot());
  counter.add(rvvsvm::sim::InstClass::kScalarAlu, 3);
  ledger.charge(2, counter.snapshot());
  EXPECT_EQ(ledger.billed_total(1), 10u);
  EXPECT_EQ(ledger.billed_total(2), 8u);
  EXPECT_EQ(ledger.grand_total().total(), 18u);
  EXPECT_EQ(ledger.num_tenants(), 2u);
  EXPECT_EQ(ledger.billed_total(99), 0u);  // unknown tenant bills zero
}

// --- admission control --------------------------------------------------------

TEST(ServeAdmission, BudgetRejectionNeverCharges) {
  ScanService svc(foreground_config());
  svc.set_budget(5, 1);  // below the estimate floor
  const Response resp = svc.call(make_request(Kind::kScan, iota_values(32), 5));
  EXPECT_EQ(resp.error, ErrorCode::kBudgetExceeded);
  EXPECT_EQ(resp.billed_total, 0u);
  EXPECT_EQ(svc.billing().billed(5).total(), 0u);
  EXPECT_EQ(svc.stats().rejected_budget, 1u);
}

TEST(ServeAdmission, MalformedShapesRejected) {
  ScanService svc(foreground_config());
  Request bad_flags = make_request(Kind::kCompress, iota_values(8));
  bad_flags.flags.pop_back();
  EXPECT_EQ(svc.call(std::move(bad_flags)).error, ErrorCode::kMalformed);

  Request bad_bins = make_request(Kind::kHistogram, iota_values(8));
  bad_bins.bins = 0;
  EXPECT_EQ(svc.call(std::move(bad_bins)).error, ErrorCode::kMalformed);
  EXPECT_EQ(svc.billing().grand_total().total(), 0u);
}

TEST(ServeAdmission, QueueOverflowRejectsExactlyTheExcess) {
  ScanService::Config cfg = foreground_config();
  cfg.queue_capacity = 2;
  ScanService svc(cfg);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 5; ++i) {
    futs.push_back(svc.submit(make_request(Kind::kScan, iota_values(16))));
  }
  svc.drain();
  std::size_t ok = 0;
  std::size_t full = 0;
  for (auto& fut : futs) {
    const Response resp = fut.get();
    if (resp.ok()) ++ok;
    if (resp.error == ErrorCode::kQueueFull) {
      ++full;
      EXPECT_EQ(resp.billed_total, 0u);
    }
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(full, 3u);
}

TEST(ServeAdmission, SubmitAfterStopRejectsWithShutdown) {
  ScanService svc(foreground_config());
  svc.stop();
  const Response resp =
      svc.call(make_request(Kind::kReduce, iota_values(4)));
  EXPECT_EQ(resp.error, ErrorCode::kShutdown);
}

// --- batching: coalesced results are bit-identical to direct execution -------

TEST(ServeBatching, CoalescedResponsesMatchDirectExecution) {
  ScanService svc(foreground_config(4));
  static constexpr Kind kKinds[] = {Kind::kScan, Kind::kScanExclusive,
                                    Kind::kReduce, Kind::kCompress};
  std::vector<Request> requests;
  std::vector<std::future<Response>> futs;
  for (const Kind kind : kKinds) {
    for (std::size_t j = 0; j < 4; ++j) {
      std::vector<Value> data(17 + 11 * j);
      for (std::size_t e = 0; e < data.size(); ++e) {
        data[e] = static_cast<Value>((e * 2654435761u) ^ j);
      }
      requests.push_back(make_request(kind, std::move(data)));
      futs.push_back(svc.submit(Request(requests.back())));
    }
  }
  svc.drain();

  rvvsvm::rvv::Machine machine({.vlen_bits = svc.config().machine.vlen_bits});
  rvvsvm::rvv::MachineScope scope(machine);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& req = requests[i];
    const Response resp = futs[i].get();
    ASSERT_TRUE(resp.ok()) << to_string(req.kind);
    EXPECT_TRUE(resp.coalesced) << to_string(req.kind);
    switch (req.kind) {
      case Kind::kScan: {
        std::vector<Value> expect(req.data);
        rvvsvm::svm::plus_scan<Value>(std::span<Value>(expect));
        EXPECT_EQ(resp.data, expect);
        break;
      }
      case Kind::kScanExclusive: {
        std::vector<Value> expect(req.data);
        rvvsvm::svm::plus_scan_exclusive<Value>(std::span<Value>(expect));
        EXPECT_EQ(resp.data, expect);
        break;
      }
      case Kind::kReduce: {
        const Value expect = rvvsvm::svm::reduce<rvvsvm::svm::PlusOp, Value>(
            std::span<const Value>(req.data));
        EXPECT_EQ(resp.scalar, expect);
        break;
      }
      case Kind::kCompress: {
        std::vector<Value> expect(req.data.size(), Value{0});
        const std::size_t kept = rvvsvm::svm::pack<Value>(
            std::span<const Value>(req.data), std::span<Value>(expect),
            std::span<const Value>(req.flags));
        expect.resize(kept);
        EXPECT_EQ(resp.out_size, kept);
        EXPECT_EQ(resp.data, expect);
        break;
      }
      default:
        break;
    }
  }
  EXPECT_GE(svc.stats().coalesced_batches, 4u);
}

TEST(ServeBatching, SingletonAndOddKindsRunIndividually) {
  ScanService svc(foreground_config());
  std::vector<std::future<Response>> futs;
  futs.push_back(svc.submit(make_request(Kind::kScan, iota_values(10))));
  futs.push_back(svc.submit(make_request(Kind::kHistogram, iota_values(20))));
  futs.push_back(svc.submit(make_request(Kind::kSort, {5, 3, 9, 1})));
  svc.drain();

  const Response scan = futs[0].get();
  EXPECT_TRUE(scan.ok());
  EXPECT_FALSE(scan.coalesced);  // nothing to coalesce with

  const Response hist = futs[1].get();
  ASSERT_TRUE(hist.ok());
  ASSERT_EQ(hist.data.size(), 8u);
  std::uint64_t total = 0;
  for (const Value c : hist.data) total += c;
  EXPECT_EQ(total, 20u);

  const Response sorted = futs[2].get();
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted.data, (std::vector<Value>{1, 3, 5, 9}));
}

TEST(ServeBatching, LargeRequestTakesWholePoolPath) {
  ScanService::Config cfg = foreground_config(4);
  cfg.coalesce_threshold = 64;
  ScanService svc(cfg);
  std::vector<Value> data(500, Value{1});
  const Response resp = svc.call(make_request(Kind::kScan, data));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp.data.size(), 500u);
  EXPECT_EQ(resp.data.front(), 1u);
  EXPECT_EQ(resp.data.back(), 500u);
  EXPECT_FALSE(resp.coalesced);
  EXPECT_EQ(svc.stats().large_requests, 1u);
  EXPECT_GT(resp.billed_total, 0u);
}

TEST(ServeBatching, EmptyPayloadIsIdentityAndBillsNothing) {
  ScanService svc(foreground_config());
  const Response scan = svc.call(make_request(Kind::kScan, {}));
  EXPECT_TRUE(scan.ok());
  EXPECT_TRUE(scan.data.empty());
  EXPECT_EQ(scan.billed_total, 0u);

  Request hist = make_request(Kind::kHistogram, {});
  hist.bins = 4;
  const Response bins = svc.call(std::move(hist));
  EXPECT_TRUE(bins.ok());
  EXPECT_EQ(bins.data, (std::vector<Value>{0, 0, 0, 0}));
  EXPECT_EQ(svc.billing().grand_total().total(), 0u);
}

// --- billing exactness ---------------------------------------------------------

TEST(ServeBilling, BillsSumExactlyToPoolMergedCounts) {
  ScanService::Config cfg = foreground_config(4);
  cfg.coalesce_threshold = 128;
  ScanService svc(cfg);
  std::vector<std::future<Response>> futs;
  futs.push_back(svc.submit(make_request(Kind::kScan, iota_values(30), 1)));
  futs.push_back(svc.submit(make_request(Kind::kScan, iota_values(40), 2)));
  futs.push_back(svc.submit(make_request(Kind::kReduce, iota_values(25), 1)));
  futs.push_back(svc.submit(make_request(Kind::kReduce, iota_values(60), 3)));
  futs.push_back(svc.submit(make_request(Kind::kHistogram, iota_values(50), 2)));
  futs.push_back(svc.submit(make_request(Kind::kSort, iota_values(40), 3)));
  futs.push_back(svc.submit(make_request(Kind::kScan, iota_values(300), 1)));
  svc.drain();

  rvvsvm::sim::InstCounter from_responses;
  for (auto& fut : futs) {
    const Response resp = fut.get();
    ASSERT_TRUE(resp.ok());
    from_responses.add_all(resp.bill);
    EXPECT_EQ(resp.billed_total, resp.bill.total());
  }
  // Response bills == tenant ledger == pool merged counts, per class.
  EXPECT_EQ(from_responses.snapshot(), svc.billing().grand_total());
  EXPECT_EQ(svc.billing().grand_total(), svc.pool().merged_counts());
  EXPECT_GT(svc.billing().grand_total().total(), 0u);
}

// --- fault isolation -------------------------------------------------------------

TEST(ServeFaults, PersistentFaultFailsOnlyThePoisonedRequest) {
  ScanService svc(foreground_config(2));
  FaultInjector inj({.trap_at_instruction = 3, .persistent = true});

  std::vector<std::future<Response>> healthy;
  healthy.push_back(svc.submit(make_request(Kind::kScan, iota_values(20), 1)));
  healthy.push_back(svc.submit(make_request(Kind::kSort, iota_values(15), 2)));

  Request poisoned = make_request(Kind::kScan, iota_values(24), 3);
  poisoned.chaos_hook = &inj;
  std::future<Response> poisoned_fut = svc.submit(std::move(poisoned));
  svc.drain();

  for (auto& fut : healthy) EXPECT_TRUE(fut.get().ok());
  const Response resp = poisoned_fut.get();
  EXPECT_EQ(resp.error, ErrorCode::kFaultInjected);
  EXPECT_EQ(resp.billed_total, 0u);  // rolled back, never billed
  EXPECT_GT(svc.pool().abandoned_counts().total(), 0u);
  // The exactness invariant survives the rollback.
  EXPECT_EQ(svc.billing().grand_total(), svc.pool().merged_counts());
}

TEST(ServeFaults, OneShotCrashIsRecoveredInvisibly) {
  ScanService svc(foreground_config(2));  // default policy retries once
  FaultInjector inj({.trap_at_instruction = 2, .crash = true});

  Request poisoned = make_request(Kind::kReduce, iota_values(40), 1);
  const Value expected = [&] {
    Value sum = 0;
    for (const Value v : poisoned.data) sum += v;
    return sum;
  }();
  poisoned.chaos_hook = &inj;
  const Response resp = svc.call(std::move(poisoned));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.scalar, expected);
  EXPECT_EQ(inj.fired(), 1u);
  EXPECT_GT(resp.billed_total, 0u);
  EXPECT_EQ(svc.billing().grand_total(), svc.pool().merged_counts());
}

TEST(ServeFaults, PoisonedBatchPeerStillCoalesces) {
  // A chaos request never joins a batch; its small same-kind peers still do.
  ScanService svc(foreground_config(2));
  FaultInjector inj({.trap_at_instruction = 1, .persistent = true});

  std::vector<std::future<Response>> peers;
  peers.push_back(svc.submit(make_request(Kind::kScan, iota_values(12), 1)));
  peers.push_back(svc.submit(make_request(Kind::kScan, iota_values(18), 2)));
  Request poisoned = make_request(Kind::kScan, iota_values(16), 3);
  poisoned.chaos_hook = &inj;
  std::future<Response> poisoned_fut = svc.submit(std::move(poisoned));
  svc.drain();

  for (auto& fut : peers) {
    const Response resp = fut.get();
    EXPECT_TRUE(resp.ok());
    EXPECT_TRUE(resp.coalesced);
  }
  EXPECT_FALSE(poisoned_fut.get().ok());
}

// --- request deadlines (ISSUE 10 tentpole) -----------------------------------

TEST(ServeDeadlines, UnmeetableDeadlineRejectedAtAdmission) {
  ScanService svc(foreground_config());
  Request req = make_request(Kind::kScan, iota_values(1024));
  req.deadline_insts = 1;  // far below any predicted cost
  const Response resp = svc.call(std::move(req));
  EXPECT_EQ(resp.error, ErrorCode::kDeadlineUnmeetable);
  EXPECT_EQ(resp.billed_total, 0u);
  EXPECT_EQ(svc.stats().rejected_deadline, 1u);
  EXPECT_EQ(svc.billing().grand_total().total(), 0u);
}

TEST(ServeDeadlines, GenerousDeadlineCompletesAndReportsVtLatency) {
  ScanService svc(foreground_config());
  const std::uint64_t deadline = 1u << 30;
  Request req = make_request(Kind::kSort, iota_values(128));
  req.deadline_insts = deadline;
  const Response resp = svc.call(std::move(req));
  ASSERT_TRUE(resp.ok());
  EXPECT_GT(resp.vt_latency, 0u);
  EXPECT_LT(resp.vt_latency, deadline);
  EXPECT_EQ(svc.stats().deadline_exceeded, 0u);
}

TEST(ServeDeadlines, MidExecutionCancellationBillsZeroExactly) {
  ScanService::Config cfg = foreground_config();
  // Admission control off so the tiny budget reaches execution and the
  // cooperative-cancellation path fires at a strip-mine wave boundary.
  cfg.admission_control = false;
  ScanService svc(cfg);

  std::vector<std::future<Response>> healthy;
  healthy.push_back(svc.submit(make_request(Kind::kScan, iota_values(40), 1)));
  healthy.push_back(svc.submit(make_request(Kind::kSort, iota_values(32), 2)));
  Request doomed = make_request(Kind::kSort, iota_values(64), 3);
  doomed.deadline_insts = 8;
  std::future<Response> doomed_fut = svc.submit(std::move(doomed));
  svc.drain();

  for (auto& fut : healthy) EXPECT_TRUE(fut.get().ok());
  const Response resp = doomed_fut.get();
  EXPECT_EQ(resp.error, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(resp.billed_total, 0u);  // the cancelled wave rolled back whole
  EXPECT_EQ(svc.billing().billed(3).total(), 0u);
  EXPECT_EQ(svc.stats().deadline_exceeded, 1u);
  EXPECT_GT(svc.pool().abandoned_counts().total(), 0u);
  // Exactness survives cancellation: bills still sum to the merged ledger.
  EXPECT_EQ(svc.billing().grand_total(), svc.pool().merged_counts());
}

TEST(ServeDeadlines, ExpiredInQueueShedsUnexecuted) {
  ScanService::Config cfg = foreground_config();
  cfg.admission_control = false;
  cfg.max_batch = 1;  // one request per wave: the first wave ages the second
  ScanService svc(cfg);

  std::future<Response> first =
      svc.submit(make_request(Kind::kScan, iota_values(64), 1));
  Request stale = make_request(Kind::kScan, iota_values(32), 2);
  stale.deadline_insts = 1;
  std::future<Response> stale_fut = svc.submit(std::move(stale));
  svc.drain();

  EXPECT_TRUE(first.get().ok());
  const Response resp = stale_fut.get();
  EXPECT_EQ(resp.error, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(resp.billed_total, 0u);  // shed before touching the pool
  EXPECT_EQ(svc.stats().expired_in_queue, 1u);
  EXPECT_EQ(svc.stats().deadline_exceeded, 1u);
  EXPECT_EQ(svc.billing().grand_total(), svc.pool().merged_counts());
}

// --- priority shedding --------------------------------------------------------

TEST(ServePriority, InteractiveEvictsNewestBackgroundAtSaturation) {
  ScanService::Config cfg = foreground_config();
  cfg.queue_capacity = 2;
  ScanService svc(cfg);

  Request b1 = make_request(Kind::kScan, iota_values(16), 1);
  b1.priority = rvvsvm::serve::Priority::kBackground;
  Request b2 = make_request(Kind::kScan, iota_values(16), 2);
  b2.priority = rvvsvm::serve::Priority::kBackground;
  Request i1 = make_request(Kind::kScan, iota_values(16), 3);
  i1.priority = rvvsvm::serve::Priority::kInteractive;

  std::future<Response> b1_fut = svc.submit(std::move(b1));
  std::future<Response> b2_fut = svc.submit(std::move(b2));
  std::future<Response> i1_fut = svc.submit(std::move(i1));
  svc.drain();

  EXPECT_TRUE(b1_fut.get().ok());  // oldest background survives
  const Response shed = b2_fut.get();
  EXPECT_EQ(shed.error, ErrorCode::kShedOverload);  // newest victim first
  EXPECT_EQ(shed.billed_total, 0u);
  EXPECT_TRUE(i1_fut.get().ok());
  EXPECT_EQ(svc.stats().shed_overload, 1u);
  EXPECT_EQ(svc.billing().grand_total(), svc.pool().merged_counts());
}

TEST(ServePriority, SamePriorityOverflowStillRejectsQueueFull) {
  ScanService::Config cfg = foreground_config();
  cfg.queue_capacity = 1;
  ScanService svc(cfg);
  Request a = make_request(Kind::kScan, iota_values(8), 1);
  a.priority = rvvsvm::serve::Priority::kInteractive;
  Request b = make_request(Kind::kScan, iota_values(8), 2);
  b.priority = rvvsvm::serve::Priority::kInteractive;
  std::future<Response> a_fut = svc.submit(std::move(a));
  const Response resp = svc.submit(std::move(b)).get();
  EXPECT_EQ(resp.error, ErrorCode::kQueueFull);  // nobody below to shed
  EXPECT_EQ(svc.stats().rejected_queue_full, 1u);
  svc.drain();
  EXPECT_TRUE(a_fut.get().ok());
}

// --- per-tenant circuit breakers ----------------------------------------------

TEST(ServeBreaker, OpensAfterThresholdAndQuarantinesOnlyThatTenant) {
  ScanService::Config cfg = foreground_config();
  cfg.breaker = {.threshold = 2, .cooldown_vt = 1u << 30};
  ScanService svc(cfg);
  FaultInjector inj({.trap_at_instruction = 2, .persistent = true});

  for (int i = 0; i < 2; ++i) {
    Request poisoned = make_request(Kind::kScan, iota_values(24), 7);
    poisoned.chaos_hook = &inj;
    EXPECT_FALSE(svc.call(std::move(poisoned)).ok());
  }
  using State = rvvsvm::serve::TenantBreakers::State;
  EXPECT_EQ(svc.breakers().state(7), State::kOpen);
  EXPECT_EQ(svc.breakers().stats().opens, 1u);

  // The quarantined tenant is rejected in admission, unexecuted, unbilled.
  const Response rej = svc.call(make_request(Kind::kScan, iota_values(16), 7));
  EXPECT_EQ(rej.error, ErrorCode::kTenantQuarantined);
  EXPECT_EQ(rej.billed_total, 0u);
  EXPECT_EQ(svc.stats().rejected_quarantined, 1u);
  // Other tenants are untouched.
  EXPECT_TRUE(svc.call(make_request(Kind::kScan, iota_values(16), 8)).ok());
  EXPECT_EQ(svc.billing().billed(7).total(), 0u);
}

TEST(ServeBreaker, HalfOpenProbeClosesOnSuccess) {
  ScanService::Config cfg = foreground_config();
  cfg.breaker = {.threshold = 1, .cooldown_vt = 0};
  ScanService svc(cfg);
  FaultInjector inj({.trap_at_instruction = 2, .persistent = true});

  Request poisoned = make_request(Kind::kScan, iota_values(24), 7);
  poisoned.chaos_hook = &inj;
  EXPECT_FALSE(svc.call(std::move(poisoned)).ok());
  using State = rvvsvm::serve::TenantBreakers::State;
  EXPECT_EQ(svc.breakers().state(7), State::kOpen);

  // Cooldown elapsed (0 vt): the next arrival is the half-open probe; its
  // success closes the breaker and normal service resumes.
  EXPECT_TRUE(svc.call(make_request(Kind::kScan, iota_values(16), 7)).ok());
  EXPECT_EQ(svc.breakers().state(7), State::kClosed);
  EXPECT_EQ(svc.breakers().stats().probes, 1u);
  EXPECT_EQ(svc.breakers().stats().closes, 1u);
  EXPECT_TRUE(svc.call(make_request(Kind::kScan, iota_values(16), 7)).ok());
}

TEST(ServeBreaker, FailedProbeReopensWithFreshCooldown) {
  ScanService::Config cfg = foreground_config();
  cfg.breaker = {.threshold = 1, .cooldown_vt = 0};
  ScanService svc(cfg);
  FaultInjector inj({.trap_at_instruction = 2, .persistent = true});

  for (int i = 0; i < 2; ++i) {
    Request poisoned = make_request(Kind::kScan, iota_values(24), 7);
    poisoned.chaos_hook = &inj;
    EXPECT_FALSE(svc.call(std::move(poisoned)).ok());
  }
  // First failure opened the breaker; the second was the half-open probe
  // failing, which re-opens it (a fresh trip, not a threshold count).
  using State = rvvsvm::serve::TenantBreakers::State;
  EXPECT_EQ(svc.breakers().state(7), State::kOpen);
  EXPECT_EQ(svc.breakers().stats().opens, 2u);
  EXPECT_EQ(svc.breakers().stats().probes, 1u);
  EXPECT_EQ(svc.breakers().stats().closes, 0u);
}

// --- checkpoint robustness (ISSUE 10 satellite) -------------------------------

TEST(ServeCheckpoint, UnwritablePathCountsFailuresAndKeepsServing) {
  ScanService::Config cfg = foreground_config();
  cfg.checkpoint_every_waves = 1;
  cfg.checkpoint_path = "/nonexistent-dir-for-serve-test/pool.snap";
  ScanService svc(cfg);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(svc.call(make_request(Kind::kScan, iota_values(16))).ok());
  }
  const ScanService::Stats stats = svc.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.checkpoints, 0u);
  EXPECT_GE(stats.checkpoint_failures, 3u);
  EXPECT_EQ(svc.billing().grand_total(), svc.pool().merged_counts());
}

// --- background (daemon) mode -----------------------------------------------------

TEST(ServeBackground, SchedulerThreadExecutesSubmissions) {
  ScanService::Config cfg;
  cfg.harts = 2;
  cfg.background = true;
  ScanService svc(cfg);
  std::vector<std::future<Response>> futs;
  for (std::size_t j = 0; j < 8; ++j) {
    futs.push_back(
        svc.submit(make_request(Kind::kScan, iota_values(10 + j), 1 + j % 2)));
  }
  for (std::size_t j = 0; j < futs.size(); ++j) {
    const Response resp = futs[j].get();
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp.data.size(), 10 + j);
    EXPECT_EQ(resp.data.front(), 1u);
  }
  svc.stop();
  EXPECT_EQ(svc.billing().grand_total(), svc.pool().merged_counts());
  EXPECT_EQ(svc.stats().completed, 8u);
}

}  // namespace
