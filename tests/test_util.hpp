// Shared helpers for the test suite.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "rvv/machine.hpp"

namespace rvvsvm::test {

/// Deterministic random values of any element type.
template <class T>
std::vector<T> random_vector(std::size_t n, std::uint32_t seed,
                             std::uint64_t bound = 0) {
  std::mt19937_64 rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) {
    std::uint64_t r = rng();
    if (bound != 0) r %= bound;
    x = static_cast<T>(r);
  }
  return v;
}

/// Deterministic 0/1 head-flag vectors with roughly `density` flag rate.
template <class T>
std::vector<T> random_flags(std::size_t n, std::uint32_t seed, double density = 0.1) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution d(density);
  std::vector<T> v(n);
  for (auto& x : v) x = d(rng) ? T{1} : T{0};
  if (n > 0) v[0] = T{1};
  return v;
}

/// Reference inclusive scan with a callable op.
template <class T, class F>
std::vector<T> ref_scan_inclusive(const std::vector<T>& in, T identity, F op) {
  std::vector<T> out(in.size());
  T acc = identity;
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc = op(acc, in[i]);
    out[i] = acc;
  }
  return out;
}

/// Reference exclusive scan.
template <class T, class F>
std::vector<T> ref_scan_exclusive(const std::vector<T>& in, T identity, F op) {
  std::vector<T> out(in.size());
  T acc = identity;
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc = op(acc, in[i]);
  }
  return out;
}

/// Reference inclusive segmented scan over head flags.
template <class T, class F>
std::vector<T> ref_seg_scan(const std::vector<T>& in, const std::vector<T>& heads,
                            T identity, F op) {
  std::vector<T> out(in.size());
  T acc = identity;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (i == 0 || heads[i] != T{0}) acc = identity;
    acc = op(acc, in[i]);
    out[i] = acc;
  }
  return out;
}

/// Sizes that exercise strip-mining boundaries for any vl.
inline std::vector<std::size_t> boundary_sizes(std::size_t vl) {
  return {0, 1, 2, vl - 1, vl, vl + 1, 2 * vl, 2 * vl + 3, 97, 257};
}

}  // namespace rvvsvm::test
