// Tests for the strided-memory applications (transpose, deinterleave) and
// typed scan coverage across every supported element width.
#include <gtest/gtest.h>

#include "apps/transpose.hpp"
#include "svm/scan.hpp"
#include "svm/segmented.hpp"
#include "test_util.hpp"

namespace {

using namespace rvvsvm;
using test::random_vector;
using T = std::uint32_t;

class TransposeTest : public ::testing::Test {
 protected:
  rvv::Machine machine{rvv::Machine::Config{.vlen_bits = 256}};
  rvv::MachineScope scope{machine};

  void check(std::size_t rows, std::size_t cols) {
    const auto src = random_vector<T>(rows * cols, static_cast<std::uint32_t>(rows * 31 + cols));
    std::vector<T> dst(rows * cols, 0);
    apps::transpose<T>(std::span<const T>(src), std::span<T>(dst), rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        ASSERT_EQ(dst[c * rows + r], src[r * cols + c]) << r << "," << c;
      }
    }
  }
};

TEST_F(TransposeTest, VariousShapes) {
  check(1, 1);
  check(1, 17);
  check(17, 1);
  check(8, 8);
  check(3, 50);     // cols spanning several blocks
  check(50, 3);
  check(13, 29);    // both prime
}

TEST_F(TransposeTest, DoubleTransposeIsIdentity) {
  const std::size_t rows = 7, cols = 23;
  const auto src = random_vector<T>(rows * cols, 500);
  std::vector<T> once(rows * cols), twice(rows * cols);
  apps::transpose<T>(std::span<const T>(src), std::span<T>(once), rows, cols);
  apps::transpose<T>(std::span<const T>(once), std::span<T>(twice), cols, rows);
  EXPECT_EQ(twice, src);
}

TEST_F(TransposeTest, ShapeMismatchThrows) {
  std::vector<T> small(5);
  EXPECT_THROW(apps::transpose<T>(std::span<const T>(small), std::span<T>(small), 2, 3),
               std::invalid_argument);
}

TEST_F(TransposeTest, DeinterleaveExtractsField) {
  // Records of 3 fields: (x, y, z) * 40.
  const std::size_t records = 40, stride = 3;
  const auto src = random_vector<T>(records * stride, 501);
  for (std::size_t f = 0; f < stride; ++f) {
    std::vector<T> field(records);
    apps::deinterleave<T>(std::span<const T>(src), std::span<T>(field), stride, f);
    for (std::size_t i = 0; i < records; ++i) {
      ASSERT_EQ(field[i], src[i * stride + f]) << f << "," << i;
    }
  }
}

TEST_F(TransposeTest, DeinterleaveBadFieldThrows) {
  std::vector<T> src(12);
  std::vector<T> dst(4);
  EXPECT_THROW(apps::deinterleave<T>(std::span<const T>(src), std::span<T>(dst), 3, 3),
               std::invalid_argument);
  EXPECT_THROW(apps::deinterleave<T>(std::span<const T>(src), std::span<T>(dst), 0, 0),
               std::invalid_argument);
}

// --- typed scan coverage across all element widths ---------------------------

template <class E>
class TypedScanTest : public ::testing::Test {
 protected:
  rvv::Machine machine{rvv::Machine::Config{.vlen_bits = 256}};
  rvv::MachineScope scope{machine};
};

using AllElementTypes =
    ::testing::Types<std::uint8_t, std::uint16_t, std::uint32_t, std::uint64_t,
                     std::int8_t, std::int16_t, std::int32_t, std::int64_t>;
TYPED_TEST_SUITE(TypedScanTest, AllElementTypes);

TYPED_TEST(TypedScanTest, InclusiveScanMatchesReference) {
  using E = TypeParam;
  const auto input = test::random_vector<E>(153, 70);
  auto data = input;
  svm::plus_scan<E>(std::span<E>(data));
  const auto expect = test::ref_scan_inclusive(
      input, E{0}, [](E a, E b) { return rvv::detail::wrap_add(a, b); });
  EXPECT_EQ(data, expect);
}

TYPED_TEST(TypedScanTest, SegmentedScanMatchesReference) {
  using E = TypeParam;
  const auto input = test::random_vector<E>(120, 71);
  // 0/1 head flags in the same element type.
  std::vector<E> flags(120, E{0});
  for (std::size_t i = 0; i < flags.size(); i += 9) flags[i] = E{1};
  auto data = input;
  svm::seg_plus_scan<E>(std::span<E>(data), std::span<const E>(flags));
  const auto expect = test::ref_seg_scan(
      input, flags, E{0}, [](E a, E b) { return rvv::detail::wrap_add(a, b); });
  EXPECT_EQ(data, expect);
}

TYPED_TEST(TypedScanTest, MaxScanMatchesReference) {
  using E = TypeParam;
  const auto input = test::random_vector<E>(99, 72);
  auto data = input;
  svm::max_scan<E>(std::span<E>(data));
  const auto expect = test::ref_scan_inclusive(
      input, std::numeric_limits<E>::min(), [](E a, E b) { return a > b ? a : b; });
  EXPECT_EQ(data, expect);
}

}  // namespace
