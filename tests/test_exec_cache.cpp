// The two-level execution cache (rvv/decode.hpp): directed tests for the
// decoded-op dispatch table, the fused-trace lifecycle, invalidation,
// per-hart isolation in the HartPool, and the chaos interaction where a
// trapped instruction mid-trace must roll back bulk charges exactly.
//
// The trace fuzz layer (src/check/properties_trace.cpp) covers the same
// contracts over random shapes; these tests pin each mechanism one at a
// time with exact stats assertions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "check/fault_injection.hpp"
#include "par/par.hpp"
#include "rvv/rvv.hpp"
#include "svm/detail.hpp"
#include "svm/svm.hpp"

namespace rvvsvm {
namespace {

using u32 = std::uint32_t;
using u64 = std::uint64_t;

std::vector<u32> iota_data(std::size_t n) {
  std::vector<u32> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

void expect_same_counts(const sim::CountSnapshot& got,
                        const sim::CountSnapshot& want, const char* what) {
  for (std::size_t k = 0; k < sim::kNumInstClasses; ++k) {
    const auto cls = static_cast<sim::InstClass>(k);
    EXPECT_EQ(got.count(cls), want.count(cls))
        << what << ": " << sim::to_string(cls) << " drifted";
  }
}

// --- level 1: decoded-op dispatch cache ------------------------------------

TEST(ExecCache, DecodedKeysSeparateSewAndLmul) {
  rvv::Machine m({.vlen_bits = 256});
  rvv::MachineScope scope(m);
  std::vector<u32> a32(64, 1);
  std::vector<u64> a64(64, 1);

  svm::p_add<u32, 1>(std::span<u32>(a32), u32{1});
  const std::size_t after_u32l1 = m.exec_cache().decoded_op_count();
  EXPECT_GT(after_u32l1, 0u);

  // Same ops at a different LMUL and a different SEW must occupy distinct
  // decoded entries — the key is (op, class, SEW, LMUL, masked).
  svm::p_add<u32, 2>(std::span<u32>(a32), u32{1});
  const std::size_t after_u32l2 = m.exec_cache().decoded_op_count();
  EXPECT_GT(after_u32l2, after_u32l1);

  svm::p_add<u64, 1>(std::span<u64>(a64), u64{1});
  EXPECT_GT(m.exec_cache().decoded_op_count(), after_u32l2);

  // Re-running an already-decoded shape adds no entries, only hits.
  const std::size_t stable = m.exec_cache().decoded_op_count();
  const std::uint64_t hits_before = m.exec_cache().stats().decode_hits;
  svm::p_add<u32, 1>(std::span<u32>(a32), u32{1});
  EXPECT_EQ(m.exec_cache().decoded_op_count(), stable);
  EXPECT_GE(m.exec_cache().stats().decode_hits, hits_before);
}

TEST(ExecCache, VlenChangesVlmaxInDecodedOps) {
  // The cache is per machine, so VLEN is implicit in the key — but the
  // decoded VLMAX must reflect each machine's configuration.
  for (const unsigned vlen : {128u, 1024u}) {
    rvv::Machine m({.vlen_bits = vlen});
    rvv::MachineScope scope(m);
    std::vector<u32> a = iota_data(64);
    svm::plus_scan<u32, 1>(std::span<u32>(a));
    std::vector<u32> want = iota_data(64);
    std::partial_sum(want.begin(), want.end(), want.begin());
    EXPECT_EQ(a, want) << "VLEN " << vlen;
    EXPECT_GT(m.exec_cache().decoded_op_count(), 0u) << "VLEN " << vlen;
  }
}

// --- level 2: trace lifecycle ----------------------------------------------

TEST(ExecCache, TraceRecordsVerifiesThenReplays) {
  rvv::Machine m({.vlen_bits = 1024});
  rvv::MachineScope scope(m);
  // VLMAX(u32, LMUL=1, VLEN=1024) = 32; four full blocks: iteration 1
  // records, iteration 2 verifies and promotes, iterations 3-4 replay.
  std::vector<u32> a(128, 2);
  svm::p_add<u32, 1>(std::span<u32>(a), u32{3});
  const auto& st = m.exec_cache().stats();
  EXPECT_EQ(st.trace_records, 1u);
  EXPECT_EQ(st.trace_promotions, 1u);
  EXPECT_EQ(st.trace_replays, 2u);
  EXPECT_GT(st.ops_replayed, 0u);
  EXPECT_EQ(st.trace_poisons, 0u);
  EXPECT_EQ(m.exec_cache().trace_count(), 1u);
  EXPECT_TRUE(std::all_of(a.begin(), a.end(), [](u32 v) { return v == 5; }));

  // A second call reuses the stable trace immediately: replays for every
  // full block, no new recordings.
  svm::p_add<u32, 1>(std::span<u32>(a), u32{3});
  EXPECT_EQ(st.trace_records, 1u);
  EXPECT_EQ(st.trace_replays, 6u);
}

TEST(ExecCache, CountsIdenticalCacheOnAndOff) {
  const auto run = [](bool cache) {
    rvv::Machine m({.vlen_bits = 512, .use_exec_cache = cache});
    rvv::MachineScope scope(m);
    std::vector<u32> a = iota_data(777);
    std::vector<u32> flags(777, 0);
    for (std::size_t i = 0; i < flags.size(); i += 100) flags[i] = 1;
    for (int pass = 0; pass < 3; ++pass) {
      svm::plus_scan<u32, 2>(std::span<u32>(a));
      svm::seg_plus_scan<u32, 4>(std::span<u32>(a),
                                 std::span<const u32>(flags));
      svm::p_add<u32, 1>(std::span<u32>(a), u32{9});
    }
    return std::pair{a, m.counter().snapshot()};
  };
  const auto [data_on, counts_on] = run(true);
  const auto [data_off, counts_off] = run(false);
  EXPECT_EQ(data_on, data_off);
  expect_same_counts(counts_on, counts_off, "cache on vs off");
}

// --- invalidation ----------------------------------------------------------

TEST(ExecCache, InvalidationDropsBothLevelsAndRebuilds) {
  rvv::Machine m({.vlen_bits = 256});
  rvv::MachineScope scope(m);
  std::vector<u32> a = iota_data(300);
  svm::plus_scan<u32, 1>(std::span<u32>(a));
  ASSERT_GT(m.exec_cache().decoded_op_count(), 0u);
  ASSERT_GT(m.exec_cache().trace_count(), 0u);

  m.invalidate_exec_caches();
  EXPECT_EQ(m.exec_cache().decoded_op_count(), 0u);
  EXPECT_EQ(m.exec_cache().trace_count(), 0u);
  EXPECT_EQ(m.exec_cache().stats().invalidations, 1u);

  // The next run re-records and must still be exact: compare data + counts
  // against a machine that never cached.
  rvv::Machine plain({.vlen_bits = 256, .use_exec_cache = false});
  std::vector<u32> b = iota_data(300);
  svm::plus_scan<u32, 1>(std::span<u32>(a));
  {
    rvv::MachineScope inner(plain);
    svm::plus_scan<u32, 1>(std::span<u32>(b));
    svm::plus_scan<u32, 1>(std::span<u32>(b));  // match a's two passes
  }
  EXPECT_GT(m.exec_cache().trace_count(), 0u);
  EXPECT_EQ(a, b);
}

TEST(ExecCache, VsetvlMemoStillRejectsIllegalLmul) {
  // The memoized vsetvl fast path must not swallow validation: an illegal
  // LMUL traps even right after a legal configuration warmed the memo.
  rvv::Machine m({.vlen_bits = 256});
  rvv::MachineScope scope(m);
  EXPECT_EQ(m.vsetvl<u32>(100, 1), 8u);
  EXPECT_THROW((void)m.vsetvl<u32>(100, 3), IllegalConfigTrap);
  EXPECT_THROW((void)m.vsetvl<u32>(100, 5), IllegalConfigTrap);
  // And the memo recovers: legal configs on both sides still work.
  EXPECT_EQ(m.vsetvl<u32>(100, 2), 16u);
  EXPECT_EQ(m.vsetvl<u32>(100, 1), 8u);
  // Each successful vsetvl retires one config instruction, memoized or not.
  const auto snap = m.counter().snapshot();
  EXPECT_EQ(m.vsetvl<u32>(50, 1), 8u);
  EXPECT_EQ(m.vsetvl<u32>(50, 1), 8u);
  EXPECT_EQ((m.counter().snapshot() - snap).count(sim::InstClass::kVectorConfig),
            2u);
}

// --- per-hart isolation ----------------------------------------------------

TEST(ExecCache, HartPoolMachinesHaveIsolatedCaches) {
  par::HartPool pool({.harts = 2, .shard_size = 64,
                      .machine = {.vlen_bits = 256}});
  ASSERT_NE(&pool.machine(0).exec_cache(), &pool.machine(1).exec_cache());

  std::vector<u32> buf = iota_data(2000);
  par::plus_scan<u32, 1>(pool, std::span<u32>(buf));
  std::vector<u32> want = iota_data(2000);
  std::partial_sum(want.begin(), want.end(), want.begin());
  EXPECT_EQ(buf, want);

  // Both harts processed shards, each through its own cache.
  EXPECT_GT(pool.machine(0).exec_cache().decoded_op_count(), 0u);
  EXPECT_GT(pool.machine(1).exec_cache().decoded_op_count(), 0u);

  // Invalidating one hart's cache must not disturb the other, and the next
  // collective still computes the exact result.
  const std::size_t hart1_traces = pool.machine(1).exec_cache().trace_count();
  pool.machine(0).invalidate_exec_caches();
  EXPECT_EQ(pool.machine(0).exec_cache().trace_count(), 0u);
  EXPECT_EQ(pool.machine(1).exec_cache().trace_count(), hart1_traces);

  buf = iota_data(2000);
  par::plus_scan<u32, 1>(pool, std::span<u32>(buf));
  EXPECT_EQ(buf, want);
}

// --- chaos interaction -----------------------------------------------------

/// d[i] = src[i] + 1 through an explicit strip-mine whose store span can be
/// truncated, so the final block's vse traps after that block's load and
/// add already retired — mid-trace once the loop's traces are stable.
void add_one_kernel(std::span<const u32> src, u32* out, std::size_t out_len) {
  svm::detail::stripmine<u32, 1>(src.size(), 2,
                                 [&](std::size_t pos, std::size_t vl) {
                                   auto x = rvv::vle<u32, 1>(src.subspan(pos), vl);
                                   x = rvv::vadd(x, u32{1}, vl);
                                   const std::size_t avail =
                                       pos < out_len
                                           ? std::min(out_len - pos, vl)
                                           : 0;
                                   rvv::vse(std::span<u32>(out + pos, avail), x,
                                            vl);
                                 });
}

TEST(ExecCache, TrapMidReplayChargesExactPrefix) {
  constexpr std::size_t kN = 200;  // VLMAX 32 at VLEN=1024: 6 full + 8 tail
  const std::vector<u32> src = iota_data(kN);
  const auto run = [&](bool cache) {
    rvv::Machine m({.vlen_bits = 1024, .use_exec_cache = cache});
    rvv::MachineScope scope(m);
    std::vector<u32> out(kN, 0);
    // Warm through record + verify so the truncated pass replays.
    add_one_kernel(std::span<const u32>(src), out.data(), kN);
    add_one_kernel(std::span<const u32>(src), out.data(), kN);
    std::fill(out.begin(), out.end(), 0u);
    bool trapped = false;
    try {
      add_one_kernel(std::span<const u32>(src), out.data(), kN - 1);
    } catch (const MemoryAccessTrap&) {
      trapped = true;
    }
    EXPECT_TRUE(trapped);
    // Recovery after the unwound iteration: the full kernel still runs.
    add_one_kernel(std::span<const u32>(src), out.data(), kN);
    if (cache) {
      const auto& st = m.exec_cache().stats();
      EXPECT_GT(st.trace_replays, 0u);
      // The trap was the data's fault, not the trace's: nothing poisoned,
      // and the stable trace kept replaying after the trap.
      EXPECT_EQ(st.trace_poisons, 0u);
      EXPECT_EQ(st.trace_aborts, 0u);
    }
    return std::pair{out, m.counter().snapshot()};
  };
  const auto [data_cached, counts_cached] = run(true);
  const auto [data_plain, counts_plain] = run(false);
  EXPECT_EQ(data_cached, data_plain);
  expect_same_counts(counts_cached, counts_plain, "trap mid-replay");
}

TEST(ExecCache, FaultHookDisengagesTracing) {
  // With any fault-injection channel armed the tracer must stand down:
  // every op keeps its pre-charge trap window, and counts match a machine
  // that never cached.
  rvv::Machine cached({.vlen_bits = 512});
  rvv::Machine plain({.vlen_bits = 512, .use_exec_cache = false});
  check::FaultInjector probe({});  // passive: observes, never fires
  for (rvv::Machine* m : {&cached, &plain}) {
    m->set_fault_hook(&probe);
    rvv::MachineScope scope(*m);
    std::vector<u32> a = iota_data(500);
    svm::plus_scan<u32, 2>(std::span<u32>(a));
    svm::plus_scan<u32, 2>(std::span<u32>(a));
    m->set_fault_hook(nullptr);
  }
  EXPECT_EQ(cached.exec_cache().stats().trace_records, 0u);
  EXPECT_EQ(cached.exec_cache().stats().trace_replays, 0u);
  expect_same_counts(cached.counter().snapshot(), plain.counter().snapshot(),
                     "armed hook");
}

TEST(ExecCache, PoolAllocTrapRollsBackMidTraceCharges) {
  // A buffer-pool allocation trap inside what would be a traced body: the
  // interpreted rollback path and a cache-off machine must agree on counts
  // after the failed run plus a clean rerun.
  const auto run = [](bool cache) {
    rvv::Machine m({.vlen_bits = 256, .use_exec_cache = cache});
    rvv::MachineScope scope(m);
    std::vector<u32> a = iota_data(400);
    svm::plus_scan<u32, 1>(std::span<u32>(a));  // warm pool + traces
    m.pool().trap_allocation_after(5);
    std::vector<u32> b = iota_data(400);
    EXPECT_THROW((svm::plus_scan<u32, 1>(std::span<u32>(b))), PoolAllocTrap);
    EXPECT_EQ(m.pool_stats().bytes_in_use, 0u);
    std::vector<u32> c = iota_data(400);
    svm::plus_scan<u32, 1>(std::span<u32>(c));
    return std::pair{c, m.counter().snapshot()};
  };
  const auto [data_cached, counts_cached] = run(true);
  const auto [data_plain, counts_plain] = run(false);
  EXPECT_EQ(data_cached, data_plain);
  expect_same_counts(counts_cached, counts_plain, "pool trap");
}

}  // namespace
}  // namespace rvvsvm
