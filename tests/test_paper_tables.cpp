// The paper-table golden regression suite (tier-1).
//
// Two independent layers of defense for every table in EXPERIMENTS.md:
//
//   paper_tables.*       — recompute each table from the library and require
//                          exact equality against the committed JSON golden
//                          under tests/golden/.  Any count change — kernel
//                          schedule, strip-mine bookkeeping, pressure model,
//                          workload seed — fails with a per-cell diff.  On
//                          failure the recomputed JSON and the diff are also
//                          written to paper_tables_diff/ in the working
//                          directory so CI can upload them as an artifact.
//
//   paper_tables_shape.* — assert the *shape claims* the reproduction makes
//                          (crossovers, plateaus, the LMUL=8 spill anomaly,
//                          VLEN monotonicity, hart-count parity) directly on
//                          the recomputed rows, never on the goldens.  A
//                          golden refresh that silently blessed a shape
//                          break would still fail here.
//
// Tables are computed once per process and shared by both suites (the
// heavy cells are the N=10^6 sweeps).  Refresh workflow: tools/regen_tables.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "tables/json.hpp"
#include "tables/paper_tables.hpp"

#ifndef RVVSVM_GOLDEN_DIR
#error "RVVSVM_GOLDEN_DIR must be defined (see tests/CMakeLists.txt)"
#endif

namespace {

using namespace rvvsvm;
using tables::Row;
using tables::TableData;

/// One computation per table per process; golden and shape tests share it.
const TableData& computed(const std::string& id) {
  static std::map<std::string, TableData> cache;
  auto it = cache.find(id);
  if (it == cache.end()) {
    it = cache.emplace(id, tables::spec(id).compute()).first;
  }
  return it->second;
}

double speedup(const Row& row, const char* base, const char* vec) {
  return static_cast<double>(row.count(base)) /
         static_cast<double>(row.count(vec));
}

void check_against_golden(const std::string& id) {
  const TableData& actual = computed(id);
  const std::string path = std::string(RVVSVM_GOLDEN_DIR) + "/" + id + ".json";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing golden " << path
                            << " — generate with tools/regen_tables";
  std::ostringstream ss;
  ss << in.rdbuf();

  TableData golden;
  ASSERT_NO_THROW(golden = tables::from_json(ss.str())) << "unparsable " << path;
  if (golden == actual) {
    // Byte-level drift (formatting, key order) without semantic drift still
    // means the golden was not produced by tools/regen_tables.
    EXPECT_EQ(ss.str(), tables::to_json(actual))
        << path << " is semantically current but not canonical — rerun "
        << "tools/regen_tables";
    return;
  }

  const std::string diff = tables::diff_tables(golden, actual);
  std::filesystem::create_directories("paper_tables_diff");
  std::ofstream(std::string("paper_tables_diff/") + id + ".actual.json")
      << tables::to_json(actual);
  std::ofstream(std::string("paper_tables_diff/") + id + ".diff.txt") << diff;
  FAIL() << "recomputed " << id << " differs from " << path << ":\n"
         << diff << "(recomputed JSON written to paper_tables_diff/" << id
         << ".actual.json; if the change is intentional, refresh with "
            "tools/regen_tables and re-review EXPERIMENTS.md)";
}

// ---------------------------------------------------------------------------
// Golden equality, one test per table so failures name the table directly.
// ---------------------------------------------------------------------------

TEST(paper_tables, table1_golden) { check_against_golden("table1"); }
TEST(paper_tables, table2_golden) { check_against_golden("table2"); }
TEST(paper_tables, table3_golden) { check_against_golden("table3"); }
TEST(paper_tables, table4_golden) { check_against_golden("table4"); }
TEST(paper_tables, table5_golden) { check_against_golden("table5"); }
TEST(paper_tables, table7_golden) { check_against_golden("table7"); }
TEST(paper_tables, headline_golden) { check_against_golden("headline"); }
TEST(paper_tables, ablation_spill_golden) { check_against_golden("ablation_spill"); }
TEST(paper_tables, ablation_carry_golden) { check_against_golden("ablation_carry"); }
TEST(paper_tables, ablation_enumerate_golden) {
  check_against_golden("ablation_enumerate");
}
TEST(paper_tables, radix_same_golden) { check_against_golden("radix_same"); }
TEST(paper_tables, bignum_golden) { check_against_golden("bignum"); }
TEST(paper_tables, seg_density_golden) { check_against_golden("seg_density"); }
TEST(paper_tables, grid_golden) { check_against_golden("grid"); }
TEST(paper_tables, par_parity_golden) { check_against_golden("par_parity"); }

TEST(paper_tables, registry_covers_every_golden) {
  // A golden file with no registered table (or vice versa) is drift too.
  std::size_t goldens = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(RVVSVM_GOLDEN_DIR)) {
    if (entry.path().extension() != ".json") continue;
    ++goldens;
    EXPECT_NO_THROW(static_cast<void>(tables::spec(entry.path().stem().string())))
        << "golden " << entry.path() << " has no registered table";
  }
  EXPECT_EQ(goldens, tables::registry().size());
}

// ---------------------------------------------------------------------------
// Shape invariants — computed rows only, independent of the goldens.
// ---------------------------------------------------------------------------

TEST(paper_tables_shape, table1_crossover_at_1000) {
  // Paper Table 1: the vectorized sort loses at N=100 and wins from N=1000.
  const TableData& t = computed("table1");
  for (const Row& row : t.rows) {
    const double s = speedup(row, "qsort", "split_radix_sort");
    if (row.n < 1000) {
      EXPECT_LT(s, 1.0) << "radix sort should lose at N=" << row.n;
    } else {
      EXPECT_GT(s, 1.0) << "radix sort should win at N=" << row.n;
    }
  }
}

TEST(paper_tables_shape, table2_speedup_plateaus_near_21) {
  // Paper Table 2: p-add speedup saturates at the vl-bound, 21.33x.
  const TableData& t = computed("table2");
  double prev = 0.0;
  for (const Row& row : t.rows) {
    const double s = speedup(row, "baseline", "p_add");
    EXPECT_GE(s, prev - 1e-9) << "p_add speedup must not fall as N grows";
    prev = s;
  }
  const double plateau = speedup(t.row("p_add_vs_baseline", 1000000, 1024, 1),
                                 "baseline", "p_add");
  EXPECT_NEAR(plateau, 21.33, 0.2);
}

TEST(paper_tables_shape, table3_scan_far_below_p_add) {
  // The lg(vl) in-register steps keep scan's speedup well under p-add's.
  const double scan = speedup(
      computed("table3").row("plus_scan_vs_baseline", 1000000, 1024, 1),
      "baseline", "plus_scan");
  const double padd = speedup(
      computed("table2").row("p_add_vs_baseline", 1000000, 1024, 1),
      "baseline", "p_add");
  EXPECT_LT(scan, 0.5 * padd);
  EXPECT_GT(scan, 1.0);
}

TEST(paper_tables_shape, table4_baseline_heavier_than_scan_baseline) {
  // The segmented sequential baseline costs ~11 instructions/element vs the
  // unsegmented ~6 — the reason the paper's seg speedup exceeds scan's.
  const TableData& seg = computed("table4");
  const TableData& scan = computed("table3");
  for (std::size_t i = 0; i < seg.rows.size(); ++i) {
    const double seg_per_elem =
        static_cast<double>(seg.rows[i].count("baseline")) /
        static_cast<double>(seg.rows[i].n);
    const double scan_per_elem =
        static_cast<double>(scan.rows[i].count("baseline")) /
        static_cast<double>(scan.rows[i].n);
    EXPECT_NEAR(seg_per_elem, 11.0, 0.25);
    EXPECT_NEAR(scan_per_elem, 6.0, 0.25);
    EXPECT_GT(seg.rows[i].count("baseline"), scan.rows[i].count("baseline"));
  }
}

TEST(paper_tables_shape, table5_lmul8_anomaly) {
  // Paper section 6.3: LMUL=8 loses to LMUL=1 at N=100 (spilling) and wins
  // at N=10^6; LMUL=2 sits between LMUL=1 and LMUL=4 at every N.
  const TableData& t = computed("table5");
  const auto cell = [&](std::uint64_t n, unsigned lmul) {
    return t.row("seg_plus_scan", n, 1024, lmul).count("seg_plus_scan");
  };
  EXPECT_GT(cell(100, 8), cell(100, 1));
  EXPECT_LT(cell(1000000, 8), cell(1000000, 1));
  for (const std::uint64_t n : {100u, 1000u, 10000u, 100000u, 1000000u}) {
    EXPECT_LT(cell(n, 2), cell(n, 1)) << "N=" << n;
    EXPECT_GT(cell(n, 2), cell(n, 4)) << "N=" << n;
  }
}

TEST(paper_tables_shape, table6_efficiency_falls_with_lmul) {
  // Paper Table 6: (speedup over LMUL=1)/LMUL declines monotonically.
  const TableData& t = computed("table5");
  for (const std::uint64_t n : {100u, 1000u, 10000u, 100000u, 1000000u}) {
    const auto eff = [&](unsigned lmul) {
      const double s = static_cast<double>(
                           t.row("seg_plus_scan", n, 1024, 1).count("seg_plus_scan")) /
                       static_cast<double>(
                           t.row("seg_plus_scan", n, 1024, lmul).count("seg_plus_scan"));
      return s / lmul;
    };
    EXPECT_GT(eff(2), eff(4)) << "N=" << n;
    EXPECT_GT(eff(4), eff(8)) << "N=" << n;
  }
}

TEST(paper_tables_shape, table7_vlen_monotone_scaling) {
  // Paper Table 7 / Figure 5: counts fall monotonically with VLEN; p-add
  // tracks the ideal vlen/128 line while segmented scan saturates below it.
  const TableData& t = computed("table7");
  for (std::size_t i = 1; i < t.rows.size(); ++i) {
    EXPECT_LT(t.rows[i].count("seg_plus_scan"), t.rows[i - 1].count("seg_plus_scan"));
    EXPECT_LT(t.rows[i].count("p_add"), t.rows[i - 1].count("p_add"));
  }
  const Row& v128 = t.row("vlen_scaling", 10000, 128, 1);
  const Row& v1024 = t.row("vlen_scaling", 10000, 1024, 1);
  const double padd_scaling = static_cast<double>(v128.count("p_add")) /
                              static_cast<double>(v1024.count("p_add"));
  const double seg_scaling = static_cast<double>(v128.count("seg_plus_scan")) /
                             static_cast<double>(v1024.count("seg_plus_scan"));
  EXPECT_GT(padd_scaling, 7.5);  // near-ideal 8x
  EXPECT_LT(seg_scaling, 6.0);   // saturates well below ideal
}

TEST(paper_tables_shape, headline_best_lmul) {
  // Scan spill-free at LMUL=8 keeps improving; segmented scan's register
  // pressure makes LMUL=4 its sweet spot — the paper's section 6.3 story.
  const TableData& t = computed("headline");
  const auto cell = [&](const char* kernel, unsigned lmul) {
    return t.row(kernel, 1000000, 1024, lmul).count("instructions");
  };
  for (const unsigned lmul : {1u, 2u, 4u}) {
    EXPECT_LT(cell("plus_scan", 8), cell("plus_scan", lmul));
  }
  for (const unsigned lmul : {1u, 2u, 8u}) {
    EXPECT_LT(cell("seg_plus_scan", 4), cell("seg_plus_scan", lmul));
  }
}

TEST(paper_tables_shape, spill_ablation_isolates_lmul8) {
  // The pressure model must retire zero spills for LMUL<=4 and a nonzero
  // spill count for LMUL=8 — the entire Table 5 anomaly.
  const TableData& t = computed("ablation_spill");
  for (const Row& row : t.rows) {
    if (row.lmul <= 4) {
      EXPECT_EQ(row.count("spill_reload"), 0u)
          << "N=" << row.n << " LMUL=" << row.lmul;
    } else {
      EXPECT_GT(row.count("spill_reload"), 0u) << "N=" << row.n;
    }
    EXPECT_LE(row.count("model_off"), row.count("with_model"));
  }
}

TEST(paper_tables_shape, carry_schedules_count_neutral) {
  // Memory vs register carry is exactly count-neutral in this metric.
  for (const Row& row : computed("ablation_carry").rows) {
    EXPECT_EQ(row.count("carry_via_memory"), row.count("carry_via_register"))
        << "N=" << row.n;
  }
}

TEST(paper_tables_shape, enumerate_viota_beats_generic_scan) {
  for (const Row& row : computed("ablation_enumerate").rows) {
    EXPECT_LT(row.count("viota_vcpop"), row.count("generic_scan"))
        << "N=" << row.n;
  }
}

TEST(paper_tables_shape, seg_density_oblivious) {
  // Identical counts at every segment density — the boundary-obliviousness
  // property the extension section documents.
  const TableData& t = computed("seg_density");
  for (const Row& row : t.rows) {
    EXPECT_EQ(row.count("seg_plus_scan"), t.rows.front().count("seg_plus_scan"));
    EXPECT_EQ(row.count("baseline"), t.rows.front().count("baseline"));
  }
}

TEST(paper_tables_shape, radix_same_algorithm_margins) {
  // Against the same-algorithm scalar radix: LMUL=1 roughly ties, LMUL=8
  // restores a >4x margin at every N.
  for (const Row& row : computed("radix_same").rows) {
    const double m1 = speedup(row, "scalar_radix", "vector_lmul1");
    const double m8 = speedup(row, "scalar_radix", "vector_lmul8");
    EXPECT_GT(m1, 0.9) << "N=" << row.n;
    EXPECT_LT(m1, 1.4) << "N=" << row.n;
    EXPECT_GT(m8, 4.0) << "N=" << row.n;
  }
}

TEST(paper_tables_shape, bignum_scan_beats_ripple) {
  for (const Row& row : computed("bignum").rows) {
    EXPECT_LT(row.count("scan_lmul4"), row.count("scan_lmul1")) << row.n;
    if (row.n >= 1000) {
      EXPECT_LT(row.count("scan_lmul1"), row.count("ripple")) << row.n;
    }
  }
}

TEST(paper_tables_shape, grid_vlen_monotone_at_every_lmul) {
  // The VLEN axis of the full grid: more lanes never cost more instructions,
  // for any kernel at any LMUL.
  const TableData& t = computed("grid");
  for (const unsigned lmul : {1u, 2u, 4u, 8u}) {
    for (const unsigned vlen : {256u, 512u, 1024u}) {
      const Row& wide = t.row("core_kernels", 10000, vlen, lmul);
      const Row& narrow = t.row("core_kernels", 10000, vlen / 2, lmul);
      for (const char* kernel :
           {"p_add", "plus_scan", "seg_plus_scan", "split_radix_sort"}) {
        EXPECT_LT(wide.count(kernel), narrow.count(kernel))
            << kernel << " vlen=" << vlen << " lmul=" << lmul;
      }
    }
  }
}

TEST(paper_tables_shape, grid_lmul8_anomaly_at_every_vlen) {
  // The spill anomaly is a register-file property, not a VLEN=1024 artifact:
  // at every VLEN, segmented scan's LMUL=8 loses to LMUL=4 while the
  // spill-free kernels keep improving.
  const TableData& t = computed("grid");
  for (const unsigned vlen : {128u, 256u, 512u, 1024u}) {
    const auto cell = [&](const char* kernel, unsigned lmul) {
      return t.row("core_kernels", 10000, vlen, lmul).count(kernel);
    };
    EXPECT_GT(cell("seg_plus_scan", 8), cell("seg_plus_scan", 4))
        << "vlen=" << vlen;
    EXPECT_LT(cell("p_add", 8), cell("p_add", 1)) << "vlen=" << vlen;
    EXPECT_LT(cell("plus_scan", 8), cell("plus_scan", 1)) << "vlen=" << vlen;
  }
}

TEST(paper_tables_shape, par_parity_across_harts) {
  // PR 2's count-invariance contract, held in the golden suite: the merged
  // dynamic-instruction counts of every par:: collective are identical at
  // 1, 2, 4 and 8 harts.
  const TableData& t = computed("par_parity");
  for (const char* kernel : {"plus_scan", "split", "split_radix_sort"}) {
    const Row& one = t.row(kernel, 10000, 1024, 1, 1);
    for (const unsigned harts : {2u, 4u, 8u}) {
      const Row& row = t.row(kernel, 10000, 1024, 1, harts);
      for (const char* counter : {"total", "vector", "scalar", "spill_reload"}) {
        EXPECT_EQ(row.count(counter), one.count(counter))
            << kernel << " at " << harts << " harts, counter " << counter;
      }
    }
  }
}

}  // namespace
