// Tests for the segment-descriptor conversions (head-flags ⇄ lengths ⇄
// head-pointers), including round-trips and validation.
#include <gtest/gtest.h>

#include "svm/segdesc.hpp"
#include "test_util.hpp"

namespace {

using namespace rvvsvm;
using T = std::uint32_t;

class SegDescTest : public ::testing::Test {
 protected:
  rvv::Machine machine{rvv::Machine::Config{.vlen_bits = 256}};
  rvv::MachineScope scope{machine};
};

TEST_F(SegDescTest, LengthsToHeadFlags) {
  const std::vector<T> lengths{3, 2, 4};
  std::vector<T> flags(9, 99);
  svm::lengths_to_head_flags<T>(std::span<const T>(lengths), std::span<T>(flags));
  EXPECT_EQ(flags, (std::vector<T>{1, 0, 0, 1, 0, 1, 0, 0, 0}));
}

TEST_F(SegDescTest, SingleSegment) {
  const std::vector<T> lengths{5};
  std::vector<T> flags(5);
  svm::lengths_to_head_flags<T>(std::span<const T>(lengths), std::span<T>(flags));
  EXPECT_EQ(flags, (std::vector<T>{1, 0, 0, 0, 0}));
}

TEST_F(SegDescTest, AllUnitSegments) {
  const std::vector<T> lengths{1, 1, 1, 1};
  std::vector<T> flags(4);
  svm::lengths_to_head_flags<T>(std::span<const T>(lengths), std::span<T>(flags));
  EXPECT_EQ(flags, (std::vector<T>{1, 1, 1, 1}));
}

TEST_F(SegDescTest, ZeroLengthSegmentRejected) {
  const std::vector<T> lengths{2, 0, 3};
  std::vector<T> flags(5);
  EXPECT_THROW(
      svm::lengths_to_head_flags<T>(std::span<const T>(lengths), std::span<T>(flags)),
      std::invalid_argument);
}

TEST_F(SegDescTest, HeadFlagsToPointers) {
  const std::vector<T> flags{1, 0, 0, 1, 0, 1, 0, 0, 0};
  std::vector<T> ptrs(9, 99);
  const std::size_t segs = svm::head_flags_to_pointers<T>(std::span<const T>(flags),
                                                          std::span<T>(ptrs));
  EXPECT_EQ(segs, 3u);
  EXPECT_EQ(std::vector<T>(ptrs.begin(), ptrs.begin() + 3), (std::vector<T>{0, 3, 5}));
}

TEST_F(SegDescTest, ImplicitHeadAtZeroReported) {
  const std::vector<T> flags{0, 0, 1, 0};
  std::vector<T> ptrs(4);
  const std::size_t segs = svm::head_flags_to_pointers<T>(std::span<const T>(flags),
                                                          std::span<T>(ptrs));
  EXPECT_EQ(segs, 2u);
  EXPECT_EQ(ptrs[0], 0u);
  EXPECT_EQ(ptrs[1], 2u);
}

TEST_F(SegDescTest, PointersToLengths) {
  const std::vector<T> ptrs{0, 3, 5};
  std::vector<T> lengths(3);
  svm::pointers_to_lengths<T>(std::span<const T>(ptrs), 9, std::span<T>(lengths));
  EXPECT_EQ(lengths, (std::vector<T>{3, 2, 4}));
}

TEST_F(SegDescTest, HeadFlagsToLengthsRoundTrip) {
  const std::vector<T> lengths{4, 1, 7, 2, 19, 1, 30};
  std::size_t n = 0;
  for (const T l : lengths) n += l;
  std::vector<T> flags(n);
  svm::lengths_to_head_flags<T>(std::span<const T>(lengths), std::span<T>(flags));
  std::vector<T> back(lengths.size(), 0);
  const std::size_t segs = svm::head_flags_to_lengths<T>(std::span<const T>(flags),
                                                         std::span<T>(back));
  EXPECT_EQ(segs, lengths.size());
  EXPECT_EQ(back, lengths);
}

TEST_F(SegDescTest, RoundTripAcrossBlockBoundaries) {
  // Lengths vector longer than one strip-mine block.
  const std::size_t vl = machine.vlmax<T>();
  std::vector<T> lengths(3 * vl + 2, 1);
  lengths[0] = 5;
  lengths[vl] = 3;
  std::size_t n = 0;
  for (const T l : lengths) n += l;
  std::vector<T> flags(n);
  svm::lengths_to_head_flags<T>(std::span<const T>(lengths), std::span<T>(flags));
  std::vector<T> back(lengths.size());
  EXPECT_EQ(svm::head_flags_to_lengths<T>(std::span<const T>(flags), std::span<T>(back)),
            lengths.size());
  EXPECT_EQ(back, lengths);
}

TEST_F(SegDescTest, ValidateHeadFlags) {
  const std::vector<T> good{1, 0, 1, 0};
  EXPECT_NO_THROW(svm::validate_head_flags<T>(std::span<const T>(good)));
  const std::vector<T> bad{1, 0, 2, 0};
  EXPECT_THROW(svm::validate_head_flags<T>(std::span<const T>(bad)),
               std::invalid_argument);
}

TEST_F(SegDescTest, EmptyDescriptors) {
  std::vector<T> empty;
  EXPECT_EQ(svm::head_flags_to_pointers<T>(std::span<const T>(empty),
                                           std::span<T>(empty)),
            0u);
  svm::pointers_to_lengths<T>(std::span<const T>(empty), 0, std::span<T>(empty));
}

}  // namespace
