// Unit tests for the permutation instructions (slides, gather, compress)
// and the memory instructions (unit/strided/indexed loads & stores).
#include <gtest/gtest.h>

#include "rvv/rvv.hpp"

namespace {

using namespace rvvsvm;
using T = std::uint32_t;

class PermuteTest : public ::testing::Test {
 protected:
  rvv::Machine machine{rvv::Machine::Config{.vlen_bits = 256}};
  rvv::MachineScope scope{machine};

  rvv::vreg<T> load(const std::vector<T>& v) {
    return rvv::vle<T>(std::span<const T>(v), v.size());
  }
};

TEST_F(PermuteTest, SlideupMergesDestLow) {
  const auto dest = load({100, 200, 300, 400});
  const auto src = load({1, 2, 3, 4});
  const auto r = rvv::vslideup(dest, src, 2, 4);
  EXPECT_EQ(r[0], 100u);
  EXPECT_EQ(r[1], 200u);
  EXPECT_EQ(r[2], 1u);
  EXPECT_EQ(r[3], 2u);
}

TEST_F(PermuteTest, SlideupOffsetZeroCopiesSrc) {
  const auto dest = load({9, 9});
  const auto src = load({1, 2});
  const auto r = rvv::vslideup(dest, src, 0, 2);
  EXPECT_EQ(r[0], 1u);
  EXPECT_EQ(r[1], 2u);
}

TEST_F(PermuteTest, SlideupOffsetBeyondVlKeepsDest) {
  const auto dest = load({9, 8, 7});
  const auto src = load({1, 2, 3});
  const auto r = rvv::vslideup(dest, src, 5, 3);
  EXPECT_EQ(r[0], 9u);
  EXPECT_EQ(r[1], 8u);
  EXPECT_EQ(r[2], 7u);
}

TEST_F(PermuteTest, SlidedownShiftsAndZeroFills) {
  const auto src = load({1, 2, 3, 4, 5, 6, 7, 8});  // fills capacity
  const auto r = rvv::vslidedown(src, 3, 8);
  EXPECT_EQ(r[0], 4u);
  EXPECT_EQ(r[4], 8u);
  EXPECT_EQ(r[5], 0u);  // beyond VLMAX: zero
  EXPECT_EQ(r[7], 0u);
}

TEST_F(PermuteTest, Slide1UpInjectsScalar) {
  const auto src = load({1, 2, 3});
  const auto r = rvv::vslide1up(src, 42u, 3);
  EXPECT_EQ(r[0], 42u);
  EXPECT_EQ(r[1], 1u);
  EXPECT_EQ(r[2], 2u);
}

TEST_F(PermuteTest, Slide1DownInjectsAtTail) {
  const auto src = load({1, 2, 3});
  const auto r = rvv::vslide1down(src, 42u, 3);
  EXPECT_EQ(r[0], 2u);
  EXPECT_EQ(r[1], 3u);
  EXPECT_EQ(r[2], 42u);
}

TEST_F(PermuteTest, RgatherIndexesAndZeroesOutOfRange) {
  const auto src = load({10, 20, 30, 40});
  const auto idx = load({3, 0, 999, 1});
  const auto r = rvv::vrgather(src, idx, 4);
  EXPECT_EQ(r[0], 40u);
  EXPECT_EQ(r[1], 10u);
  EXPECT_EQ(r[2], 0u);  // index >= VLMAX reads as zero (spec 16.4)
  EXPECT_EQ(r[3], 20u);
}

TEST_F(PermuteTest, CompressPacksActiveElements) {
  const auto src = load({10, 20, 30, 40, 50});
  const auto flags = load({1, 0, 1, 0, 1});
  const auto mask = rvv::vmsne(flags, 0u, 5);
  const auto r = rvv::vcompress(src, mask, 5);
  EXPECT_EQ(r[0], 10u);
  EXPECT_EQ(r[1], 30u);
  EXPECT_EQ(r[2], 50u);
  EXPECT_EQ(r[3], rvv::kTailPoison<T>);  // past the packed count
}

class MemoryTest : public PermuteTest {};

TEST_F(MemoryTest, VleVseRoundTrip) {
  const std::vector<T> src{5, 6, 7, 8};
  std::vector<T> dst(4, 0);
  const auto v = rvv::vle<T>(std::span<const T>(src), 4);
  rvv::vse(std::span<T>(dst), v, 4);
  EXPECT_EQ(dst, src);
}

TEST_F(MemoryTest, VlePartialLeavesTailPoison) {
  const std::vector<T> src{5, 6};
  const auto v = rvv::vle<T>(std::span<const T>(src), 2);
  EXPECT_EQ(v[1], 6u);
  EXPECT_EQ(v[2], rvv::kTailPoison<T>);
}

TEST_F(MemoryTest, VseShortSpanThrows) {
  const auto v = load({1, 2, 3, 4});
  std::vector<T> dst(2);
  EXPECT_THROW(rvv::vse(std::span<T>(dst), v, 4), std::out_of_range);
}

TEST_F(MemoryTest, MaskedStoreWritesOnlyActive) {
  const auto v = load({1, 2, 3, 4});
  const auto mask = rvv::vmsgt(v, 2u, 4);
  std::vector<T> dst(4, 99);
  rvv::vse_m(mask, std::span<T>(dst), v, 4);
  EXPECT_EQ(dst, (std::vector<T>{99, 99, 3, 4}));
}

TEST_F(MemoryTest, StridedLoadStore) {
  const std::vector<T> src{0, 1, 2, 3, 4, 5, 6, 7};
  const auto v = rvv::vlse<T>(std::span<const T>(src), 3, 3);  // 0, 3, 6
  EXPECT_EQ(v[0], 0u);
  EXPECT_EQ(v[1], 3u);
  EXPECT_EQ(v[2], 6u);
  std::vector<T> dst(8, 0);
  rvv::vsse(std::span<T>(dst), 2, v, 3);
  EXPECT_EQ(dst, (std::vector<T>{0, 0, 3, 0, 6, 0, 0, 0}));
}

TEST_F(MemoryTest, StridedOutOfBoundsThrows) {
  const std::vector<T> src{0, 1, 2, 3};
  EXPECT_THROW(static_cast<void>(rvv::vlse<T>(std::span<const T>(src), 3, 3)),
               std::out_of_range);
}

TEST_F(MemoryTest, IndexedLoadGathersByElementIndex) {
  const std::vector<T> table{100, 101, 102, 103, 104};
  const auto idx = load({4, 0, 2});
  const auto v = rvv::vluxei(std::span<const T>(table), idx, 3);
  EXPECT_EQ(v[0], 104u);
  EXPECT_EQ(v[1], 100u);
  EXPECT_EQ(v[2], 102u);
}

TEST_F(MemoryTest, IndexedLoadOutOfRangeThrows) {
  const std::vector<T> table{1, 2};
  const auto idx = load({5});
  EXPECT_THROW(static_cast<void>(rvv::vluxei(std::span<const T>(table), idx, 1)),
               std::out_of_range);
}

TEST_F(MemoryTest, IndexedStoreScatters) {
  const auto idx = load({3, 1, 0});
  const auto val = load({30, 10, 0});
  std::vector<T> dst(4, 99);
  rvv::vsuxei(std::span<T>(dst), idx, val, 3);
  EXPECT_EQ(dst, (std::vector<T>{0, 10, 99, 30}));
}

TEST_F(MemoryTest, IndexedStoreDuplicateLastWriterWins) {
  const auto idx = load({0, 0, 0});
  const auto val = load({1, 2, 3});
  std::vector<T> dst(1, 0);
  rvv::vsuxei(std::span<T>(dst), idx, val, 3);
  EXPECT_EQ(dst[0], 3u);  // element-order scatter: last write survives
}

TEST_F(MemoryTest, MaskedIndexedStore) {
  const auto idx = load({0, 1, 2});
  const auto val = load({7, 8, 9});
  const auto flags = load({1, 0, 1});
  const auto mask = rvv::vmsne(flags, 0u, 3);
  std::vector<T> dst(3, 0);
  rvv::vsuxei_m(mask, std::span<T>(dst), idx, val, 3);
  EXPECT_EQ(dst, (std::vector<T>{7, 0, 9}));
}

TEST_F(MemoryTest, MoveFamilies) {
  const auto splat = rvv::vmv_v_x<T>(77u, 4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(splat[i], 77u);
  const auto copy = rvv::vmv_v_v(splat, 4);
  EXPECT_EQ(copy[3], 77u);
  const auto s = rvv::vmv_s_x(splat, 5u, 4);
  EXPECT_EQ(s[0], 5u);
  EXPECT_EQ(s[1], 77u);  // vmv.s.x leaves the rest undisturbed
  EXPECT_EQ(rvv::vmv_x_s(s), 5u);
}

TEST_F(MemoryTest, InstructionClassAccounting) {
  const auto before = machine.counter().snapshot();
  const std::vector<T> mem{1, 2, 3, 4};
  std::vector<T> out(4);
  const auto v = rvv::vle<T>(std::span<const T>(mem), 4);
  const auto idx = rvv::vid<T>(4);
  rvv::vsuxei(std::span<T>(out), idx, v, 4);
  const auto r = rvv::vslideup(v, v, 1, 4);
  static_cast<void>(rvv::vredsum(r, 4));
  const auto delta = machine.counter().snapshot() - before;
  EXPECT_EQ(delta.count(sim::InstClass::kVectorLoad), 1u);
  EXPECT_EQ(delta.count(sim::InstClass::kVectorStore), 1u);
  EXPECT_EQ(delta.count(sim::InstClass::kVectorPermute), 1u);
  EXPECT_EQ(delta.count(sim::InstClass::kVectorReduce), 1u);
  EXPECT_EQ(delta.count(sim::InstClass::kVectorMask), 1u);  // vid
}

}  // namespace
