// Tests for the elementwise instruction class: arithmetic against scalar
// references across boundary sizes, p_select semantics, comparison flags,
// and the closed-form instruction count of p-add (the paper's Listing 2/4
// schedule: 9 instructions per strip-mine iteration plus one guard branch).
#include <gtest/gtest.h>

#include "svm/elementwise.hpp"
#include "test_util.hpp"

namespace {

using namespace rvvsvm;
using test::random_vector;
using T = std::uint32_t;

class ElementwiseTest : public ::testing::Test {
 protected:
  rvv::Machine machine{rvv::Machine::Config{.vlen_bits = 256}};
  rvv::MachineScope scope{machine};
};

TEST_F(ElementwiseTest, PAddScalarAllSizes) {
  for (const std::size_t n : test::boundary_sizes(machine.vlmax<T>())) {
    auto a = random_vector<T>(n, static_cast<std::uint32_t>(n));
    const auto input = a;
    svm::p_add<T>(std::span<T>(a), 77u);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(a[i], input[i] + 77u) << n << ":" << i;
  }
}

TEST_F(ElementwiseTest, VectorVectorOps) {
  const std::size_t n = 131;
  const auto b = random_vector<T>(n, 2);
  struct Case {
    void (*op)(std::span<T>, std::span<const T>);
    T (*ref)(T, T);
  };
  const Case cases[] = {
      {&svm::p_add<T, 1>, [](T x, T y) { return x + y; }},
      {&svm::p_sub<T, 1>, [](T x, T y) { return x - y; }},
      {&svm::p_mul<T, 1>, [](T x, T y) { return x * y; }},
      {&svm::p_max<T, 1>, [](T x, T y) { return x > y ? x : y; }},
      {&svm::p_min<T, 1>, [](T x, T y) { return x < y ? x : y; }},
      {&svm::p_and<T, 1>, [](T x, T y) { return x & y; }},
      {&svm::p_or<T, 1>, [](T x, T y) { return x | y; }},
      {&svm::p_xor<T, 1>, [](T x, T y) { return x ^ y; }},
  };
  for (const auto& c : cases) {
    auto a = random_vector<T>(n, 1);
    const auto input = a;
    c.op(std::span<T>(a), std::span<const T>(b));
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(a[i], c.ref(input[i], b[i])) << i;
    }
  }
}

TEST_F(ElementwiseTest, Shifts) {
  auto a = random_vector<T>(100, 3);
  const auto input = a;
  svm::p_shift_right<T>(std::span<T>(a), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], input[i] >> 4);
  auto b = input;
  svm::p_shift_left<T>(std::span<T>(b), 3u);
  for (std::size_t i = 0; i < b.size(); ++i) ASSERT_EQ(b[i], input[i] << 3);
}

TEST_F(ElementwiseTest, SelectReplacesWhereFlagged) {
  const std::vector<T> flags{0, 1, 0, 1, 1};
  const std::vector<T> if_true{10, 20, 30, 40, 50};
  std::vector<T> dst{1, 2, 3, 4, 5};
  svm::p_select<T>(std::span<const T>(flags), std::span<const T>(if_true),
                   std::span<T>(dst));
  EXPECT_EQ(dst, (std::vector<T>{1, 20, 3, 40, 50}));
}

TEST_F(ElementwiseTest, SelectTreatsAnyNonZeroAsTrue) {
  const std::vector<T> flags{0, 7, 0};
  const std::vector<T> if_true{9, 9, 9};
  std::vector<T> dst{1, 2, 3};
  svm::p_select<T>(std::span<const T>(flags), std::span<const T>(if_true),
                   std::span<T>(dst));
  EXPECT_EQ(dst, (std::vector<T>{1, 9, 3}));
}

TEST_F(ElementwiseTest, ComparisonFlags) {
  const std::vector<T> a{1, 5, 3, 3};
  const std::vector<T> b{2, 4, 3, 1};
  std::vector<T> lt(4), eq(4), gt(4), ne(4);
  svm::p_flag_lt<T>(std::span<const T>(a), std::span<const T>(b), std::span<T>(lt));
  svm::p_flag_eq<T>(std::span<const T>(a), std::span<const T>(b), std::span<T>(eq));
  svm::p_flag_gt<T>(std::span<const T>(a), std::span<const T>(b), std::span<T>(gt));
  svm::p_flag_ne<T>(std::span<const T>(a), std::span<const T>(b), std::span<T>(ne));
  EXPECT_EQ(lt, (std::vector<T>{1, 0, 0, 0}));
  EXPECT_EQ(eq, (std::vector<T>{0, 0, 1, 0}));
  EXPECT_EQ(gt, (std::vector<T>{0, 1, 0, 1}));
  EXPECT_EQ(ne, (std::vector<T>{1, 1, 0, 1}));
  // The three partition flags of any pair sum to exactly 1.
  for (std::size_t i = 0; i < 4; ++i) ASSERT_EQ(lt[i] + eq[i] + gt[i], 1u);
}

TEST_F(ElementwiseTest, ScalarThresholdFlag) {
  const std::vector<T> a{1, 5, 3, 9};
  std::vector<T> f(4);
  svm::p_flag_gt<T>(std::span<const T>(a), 3u, std::span<T>(f));
  EXPECT_EQ(f, (std::vector<T>{0, 1, 0, 1}));
}

TEST_F(ElementwiseTest, CopyAllSizes) {
  for (const std::size_t n : test::boundary_sizes(machine.vlmax<T>())) {
    const auto src = random_vector<T>(n, static_cast<std::uint32_t>(n) + 9);
    std::vector<T> dst(n, 0);
    svm::p_copy<T>(std::span<const T>(src), std::span<T>(dst));
    ASSERT_EQ(dst, src) << n;
  }
}

TEST_F(ElementwiseTest, SizeMismatchThrows) {
  std::vector<T> a(10);
  std::vector<T> b(5);
  EXPECT_THROW(svm::p_add<T>(std::span<T>(a), std::span<const T>(b)),
               std::invalid_argument);
  std::vector<T> dst(10);
  EXPECT_THROW(svm::p_select<T>(std::span<const T>(b), std::span<const T>(a),
                                std::span<T>(dst)),
               std::invalid_argument);
}

TEST_F(ElementwiseTest, SignedAndNarrowTypes) {
  std::vector<std::int32_t> s{-5, 0, 5};
  svm::p_add<std::int32_t>(std::span<std::int32_t>(s), -10);
  EXPECT_EQ(s, (std::vector<std::int32_t>{-15, -10, -5}));
  std::vector<std::uint8_t> b{250, 10};
  svm::p_add<std::uint8_t>(std::span<std::uint8_t>(b), std::uint8_t{10});
  EXPECT_EQ(b[0], std::uint8_t{4});  // wraps mod 256
  EXPECT_EQ(b[1], std::uint8_t{20});
  std::vector<std::uint64_t> w{1ull << 60};
  svm::p_add<std::uint64_t>(std::span<std::uint64_t>(w), std::uint64_t{5});
  EXPECT_EQ(w[0], (1ull << 60) + 5);
}

// --- closed-form instruction counts (the model contract) -------------------

TEST(ElementwiseCounts, PAddMatchesListing2Schedule) {
  // Per strip-mine iteration: vsetvl + vle + vadd + vse (4 vector) plus the
  // Listing 2 scalar bookkeeping for one pointer (5) = 9; one guard branch.
  for (const unsigned vlen : {128u, 256u, 1024u}) {
    rvv::Machine machine(rvv::Machine::Config{.vlen_bits = vlen});
    rvv::MachineScope scope(machine);
    const std::size_t vl = machine.vlmax<T>();
    for (const std::size_t n : {std::size_t{1}, vl, 3 * vl + 1, std::size_t{1000}}) {
      auto a = random_vector<T>(n, 4);
      const auto before = machine.counter().snapshot();
      svm::p_add<T, 1>(std::span<T>(a), 1u);
      const auto total = (machine.counter().snapshot() - before).total();
      const std::uint64_t iters = (n + vl - 1) / vl;
      EXPECT_EQ(total, 9 * iters + 1) << "vlen=" << vlen << " n=" << n;
    }
  }
}

TEST(ElementwiseCounts, LmulDividesIterationCount) {
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 1024});
  rvv::MachineScope scope(machine);
  const std::size_t n = 10000;
  auto a = random_vector<T>(n, 5);
  const auto b1 = machine.counter().snapshot();
  svm::p_add<T, 1>(std::span<T>(a), 1u);
  const auto c1 = (machine.counter().snapshot() - b1).total();
  const auto b8 = machine.counter().snapshot();
  svm::p_add<T, 8>(std::span<T>(a), 1u);
  const auto c8 = (machine.counter().snapshot() - b8).total();
  // p-add keeps one live vector value: no spills at any LMUL, so LMUL=8
  // runs ~8x fewer iterations.
  EXPECT_NEAR(static_cast<double>(c1) / static_cast<double>(c8), 8.0, 0.3);
}

TEST(ElementwiseCounts, DeterministicAcrossRuns) {
  const auto run = [] {
    rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 512});
    rvv::MachineScope scope(machine);
    auto a = random_vector<T>(777, 6);
    svm::p_add<T>(std::span<T>(a), 3u);
    return machine.counter().total();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
