// Tests for the sequential baselines: correctness against references and
// the exact per-element instruction schedules the paper's Tables 2-4
// baseline columns imply (6/6/11 instructions per element).
#include <gtest/gtest.h>

#include <algorithm>

#include "svm/baseline/baseline.hpp"
#include "svm/baseline/qsort.hpp"
#include "test_util.hpp"

namespace {

using namespace rvvsvm;
using test::random_flags;
using test::random_vector;
using T = std::uint32_t;

class BaselineTest : public ::testing::Test {
 protected:
  rvv::Machine machine{rvv::Machine::Config{.vlen_bits = 1024}};
  rvv::MachineScope scope{machine};

  std::uint64_t measure(const std::function<void()>& f) {
    const auto before = machine.counter().snapshot();
    f();
    return (machine.counter().snapshot() - before).total();
  }
};

TEST_F(BaselineTest, PAddComputesAndCostsSixPerElement) {
  auto a = random_vector<T>(1000, 1);
  const auto input = a;
  const auto count = measure([&] {
    svm::baseline::p_add<T>(std::span<T>(a), 9u);
  });
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], input[i] + 9u);
  EXPECT_EQ(count, 6u * 1000 + 1);  // matches paper Table 2: 6002 for N=1000
}

TEST_F(BaselineTest, PlusScanComputesAndCostsSixPerElement) {
  auto a = random_vector<T>(1000, 2);
  const auto expect = test::ref_scan_inclusive(a, T{0}, [](T x, T y) { return x + y; });
  const auto count = measure([&] {
    svm::baseline::plus_scan<T>(std::span<T>(a));
  });
  EXPECT_EQ(a, expect);
  EXPECT_EQ(count, 6u * 1000 + 1);
}

TEST_F(BaselineTest, ExclusiveScan) {
  auto a = random_vector<T>(500, 3);
  const auto expect = test::ref_scan_exclusive(a, T{0}, [](T x, T y) { return x + y; });
  svm::baseline::plus_scan_exclusive<T>(std::span<T>(a));
  EXPECT_EQ(a, expect);
}

TEST_F(BaselineTest, SegScanComputesAndCostsElevenPerElement) {
  auto a = random_vector<T>(1000, 4);
  const auto flags = random_flags<T>(1000, 5, 0.05);
  const auto expect = test::ref_seg_scan(a, flags, T{0}, [](T x, T y) { return x + y; });
  const auto count = measure([&] {
    svm::baseline::seg_plus_scan<T>(std::span<T>(a), std::span<const T>(flags));
  });
  EXPECT_EQ(a, expect);
  EXPECT_EQ(count, 11u * 1000 + 1);  // matches paper Table 4: 11024-ish
}

TEST_F(BaselineTest, EnumerateMatchesVectorizedSemantics) {
  const auto flags = random_flags<T>(700, 6, 0.5);
  std::vector<T> dst(700);
  const auto total = svm::baseline::enumerate<T>(std::span<const T>(flags),
                                                 std::span<T>(dst), true);
  T count = 0;
  for (std::size_t i = 0; i < flags.size(); ++i) {
    ASSERT_EQ(dst[i], count);
    if (flags[i] == 1) ++count;
  }
  EXPECT_EQ(total, count);
}

TEST_F(BaselineTest, QsortSortsEveryDistribution) {
  const auto check = [&](std::vector<T> v) {
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    svm::baseline::qsort_u32(std::span<T>(v));
    EXPECT_EQ(v, expect);
  };
  check({});
  check({42});
  check({2, 1});
  check(random_vector<T>(1000, 7));
  check(random_vector<T>(1000, 8, 4));  // many duplicates
  std::vector<T> sorted(500);
  std::iota(sorted.begin(), sorted.end(), 0u);
  check(sorted);
  std::vector<T> reversed(sorted.rbegin(), sorted.rend());
  check(reversed);
  check(std::vector<T>(300, 7u));  // all equal
}

TEST_F(BaselineTest, QsortStatsAreNLogNShaped) {
  auto v = random_vector<T>(10000, 9);
  svm::baseline::qsort_u32(std::span<T>(v));
  const auto stats = svm::baseline::last_qsort_stats();
  // n lg n ~ 132877 for n = 10^4: comparisons land within a small factor.
  EXPECT_GT(stats.comparisons, 100000u);
  EXPECT_LT(stats.comparisons, 400000u);
  EXPECT_GT(stats.swaps, 0u);
}

TEST_F(BaselineTest, QsortAllEqualIsLinear) {
  std::vector<T> v(10000, 5u);
  svm::baseline::qsort_u32(std::span<T>(v));
  const auto stats = svm::baseline::last_qsort_stats();
  // Three-way partitioning makes the all-equal case O(n), not O(n^2).
  EXPECT_LT(stats.comparisons, 60000u);
}

TEST_F(BaselineTest, QsortChargesComparatorCalls) {
  auto v = random_vector<T>(256, 10);
  const auto count = measure([&] { svm::baseline::qsort_u32(std::span<T>(v)); });
  const auto stats = svm::baseline::last_qsort_stats();
  // Every comparison costs 8 modeled instructions; total must exceed that.
  EXPECT_GE(count, stats.comparisons * 8);
}

}  // namespace
