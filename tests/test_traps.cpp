// The typed trap model's contract, pinned as unit tests: every trap class
// fires as its documented type with machine context attached; validation
// always precedes the counter charge (a trapped instruction never retires
// and never half-charges); pool-backed storage unwinds leak-free; and the
// machine — or a whole HartPool — stays fully usable after any trap is
// caught.  The chaos suite (test_chaos.cpp) stresses the same promises
// under randomized fault injection; these tests keep each clause readable
// and individually attributable.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "par/par.hpp"
#include "rvv/rvv.hpp"
#include "svm/svm.hpp"

namespace rvvsvm {
namespace {

using u32 = std::uint32_t;

// --- trap types carry their context ----------------------------------------

TEST(Traps, MachineConfigTrapIsTyped) {
  try {
    rvv::Machine m({.vlen_bits = 100});  // not a power of two
    FAIL() << "bad vlen must trap";
  } catch (const IllegalConfigTrap& t) {
    EXPECT_STREQ(t.context().op, "Machine");
    EXPECT_EQ(t.context().vlen_bits, 100u);
  }
  // Same object catchable as the historical std type.
  EXPECT_THROW(rvv::Machine({.vlen_bits = 100}), std::invalid_argument);
}

TEST(Traps, VsetvlBadLmulTrap) {
  rvv::Machine m({.vlen_bits = 256});
  try {
    (void)m.vsetvl<u32>(16, /*lmul=*/3);
    FAIL() << "LMUL=3 must trap";
  } catch (const IllegalConfigTrap& t) {
    EXPECT_STREQ(t.context().op, "vsetvl");
    EXPECT_EQ(t.context().lmul, 3u);
    EXPECT_EQ(t.context().vlen_bits, 256u);
  }
  // The trapped vsetvl never retired.
  EXPECT_EQ(m.counter().snapshot().total(), 0u);
}

TEST(Traps, OperandTrapOnOverlongVl) {
  rvv::Machine m({.vlen_bits = 128});
  rvv::MachineScope scope(m);
  const std::size_t vlmax = m.vsetvlmax<u32>();  // charges one vsetvli
  const auto before = m.counter().snapshot();
  std::vector<u32> data(2 * vlmax + 1, 1);
  try {
    (void)rvv::vle<u32, 1>(std::span<const u32>(data), vlmax + 1);
    FAIL() << "vl beyond VLMAX must trap";
  } catch (const OperandTrap& t) {
    EXPECT_EQ(t.context().vl, vlmax + 1);
    EXPECT_EQ(t.context().inst_number, before.total());
  }
  EXPECT_EQ(m.counter().snapshot().total(), before.total());
}

TEST(Traps, MemoryAccessTrapCarriesFaultingElement) {
  rvv::Machine m({.vlen_bits = 128});
  rvv::MachineScope scope(m);
  std::vector<u32> shortspan(3, 7);
  try {
    (void)rvv::vle<u32, 1>(std::span<const u32>(shortspan), 4);
    FAIL() << "load beyond the span must trap";
  } catch (const MemoryAccessTrap& t) {
    // Elements [0, 3) are in bounds; 3 is the vstart a handler would see.
    EXPECT_EQ(t.element(), 3u);
    EXPECT_STREQ(t.context().op, "vle");
    EXPECT_EQ(t.context().vl, 4u);
  }
  EXPECT_EQ(m.counter().snapshot().total(), 0u) << "trapped load retired";
}

TEST(Traps, TrappedScatterLeavesDestinationUntouched) {
  rvv::Machine m({.vlen_bits = 128});
  rvv::MachineScope scope(m);
  // Index 9 faults on a 4-element destination; element 0 is in bounds, but
  // validate-before-commit means even it must not be written.
  std::vector<u32> src{10, 20, 30, 40};
  std::vector<u32> idx{0, 9, 1, 2};
  std::vector<u32> dst(4, 777);
  auto vs = rvv::vle<u32, 1>(std::span<const u32>(src), 4);
  auto vi = rvv::vle<u32, 1>(std::span<const u32>(idx), 4);
  const auto before = m.counter().snapshot();
  try {
    rvv::vsuxei(std::span<u32>(dst), vi, vs, 4);
    FAIL() << "out-of-bounds index must trap";
  } catch (const MemoryAccessTrap& t) {
    EXPECT_EQ(t.element(), 1u);  // lowest faulting element
  }
  EXPECT_EQ(dst, (std::vector<u32>(4, 777)));
  EXPECT_EQ(m.counter().snapshot().total(), before.total());
}

TEST(Traps, CrossMachineOperandTrap) {
  rvv::Machine a({.vlen_bits = 128});
  rvv::Machine b({.vlen_bits = 128});
  rvv::vreg<u32, 1> foreign;
  {
    rvv::MachineScope scope(b);
    foreign = rvv::vmv_v_x<u32, 1>(5, 4);
  }
  rvv::MachineScope scope(a);
  const auto va = rvv::vmv_v_x<u32, 1>(1, 4);
  const auto before = a.counter().snapshot();
  EXPECT_THROW((void)rvv::vadd(va, foreign, 4), OperandTrap);
  EXPECT_EQ(a.counter().snapshot().total(), before.total());
}

TEST(Traps, InvalidInputTrapFromKernelContract) {
  rvv::Machine m({.vlen_bits = 128});
  rvv::MachineScope scope(m);
  std::vector<u32> flags{0, 2, 1};  // 2 is not a flag
  try {
    svm::validate_head_flags<u32>(std::span<const u32>(flags));
    FAIL() << "non-0/1 head flag must trap";
  } catch (const InvalidInputTrap& t) {
    EXPECT_STREQ(t.context().op, "validate_head_flags");
  }
}

TEST(Traps, PoolAllocTrapAndZeroLeak) {
  rvv::Machine m({.vlen_bits = 128});
  rvv::MachineScope scope(m);
  std::vector<u32> data(64);
  std::iota(data.begin(), data.end(), 0);
  m.pool().trap_allocation_after(3);
  std::vector<u32> buf(data);
  EXPECT_THROW((svm::plus_scan<u32, 1>(std::span<u32>(buf))), PoolAllocTrap);
  EXPECT_EQ(m.pool_stats().bytes_in_use, 0u);
  EXPECT_EQ(m.pool_stats().cells_in_use, 0u);
  // One-shot: the countdown disarmed itself, so the machine works again.
  buf = data;
  svm::plus_scan<u32, 1>(std::span<u32>(buf));
  u32 acc = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    acc += data[i];
    EXPECT_EQ(buf[i], acc);
  }
}

// --- validate-then-charge: count stability across traps ---------------------

/// A hook that traps the Nth observed instruction — the minimal in-test
/// stand-in for the chaos engine's FaultInjector.
struct TrapNth final : FaultHook {
  explicit TrapNth(std::uint64_t n) : countdown(n) {}
  std::uint64_t countdown;
  void on_instruction(sim::InstClass, const TrapContext& ctx) override {
    if (--countdown == 0) throw InjectedTrap("test trap", ctx);
  }
};

TEST(Traps, KernelCountsIdenticalAfterMidKernelTrap) {
  rvv::Machine m({.vlen_bits = 128});
  rvv::MachineScope scope(m);
  std::vector<u32> data(300);
  std::iota(data.begin(), data.end(), 1);

  std::vector<u32> golden(data);
  svm::plus_scan<u32, 1>(std::span<u32>(golden));
  const auto golden_counts = m.counter().snapshot();

  for (const std::uint64_t nth : {1u, 2u, 7u, 23u}) {
    TrapNth hook(nth);
    m.set_fault_hook(&hook);
    std::vector<u32> buf(data);
    EXPECT_THROW((svm::plus_scan<u32, 1>(std::span<u32>(buf))), InjectedTrap);
    m.set_fault_hook(nullptr);
    EXPECT_EQ(m.pool_stats().bytes_in_use, 0u);

    m.reset_counts();
    buf = data;
    svm::plus_scan<u32, 1>(std::span<u32>(buf));
    EXPECT_EQ(buf, golden) << "rerun diverged after trap at instruction " << nth;
    const auto rerun = m.counter().snapshot();
    for (std::size_t k = 0; k < sim::kNumInstClasses; ++k) {
      const auto cls = static_cast<sim::InstClass>(k);
      EXPECT_EQ(rerun.count(cls), golden_counts.count(cls))
          << "class " << sim::to_string(cls) << " drifted after trap at "
          << nth;
    }
    m.reset_counts();
  }
}

// --- HartPool failure aggregation -------------------------------------------

TEST(Traps, HartPoolCollectsEveryShardFailure) {
  par::HartPool pool({.harts = 4, .shard_size = 8, .machine = {.vlen_bits = 128}});
  try {
    pool.for_shards(8, [](std::size_t shard) {
      throw std::runtime_error("shard " + std::to_string(shard) + " broke");
    });
    FAIL() << "all-failing epoch must throw";
  } catch (const par::ShardExecutionError& e) {
    const par::EpochReport& report = e.report();
    ASSERT_EQ(report.failures.size(), 8u)
        << "only a subset of failures was collected";
    std::vector<bool> seen(8, false);
    for (const auto& f : report.failures) {
      ASSERT_LT(f.shard, 8u);
      seen[f.shard] = true;
      EXPECT_FALSE(f.recovered);
      EXPECT_EQ(f.attempts, 1u);
      EXPECT_EQ(f.message, "shard " + std::to_string(f.shard) + " broke");
      EXPECT_GE(f.hart, 0);
      EXPECT_LT(f.hart, 4);
    }
    for (std::size_t s = 0; s < 8; ++s) {
      EXPECT_TRUE(seen[s]) << "failure of shard " << s << " was dropped";
    }
    EXPECT_FALSE(report.all_recovered());
  }
  // The pool survives the failed epoch.
  std::vector<int> hits(8, 0);
  pool.for_shards(8, [&](std::size_t shard) { ++hits[shard]; });
  EXPECT_EQ(hits, std::vector<int>(8, 1));
  EXPECT_TRUE(pool.last_report().failures.empty());
}

TEST(Traps, HartPoolTrapFailurePreservesContext) {
  par::HartPool pool({.harts = 2, .shard_size = 4, .machine = {.vlen_bits = 128}});
  std::vector<u32> data(8, 1);
  try {
    pool.for_shards(2, [&](std::size_t shard) {
      if (shard == 1) {
        // An overlong unit-stride load: a genuine typed trap from inside a
        // shard body, whose context must survive into the report.
        (void)rvv::vle<u32, 1>(std::span<const u32>(data).first(2), 3);
      }
    });
    FAIL() << "epoch with a trapping shard must throw";
  } catch (const par::ShardExecutionError& e) {
    ASSERT_EQ(e.report().failures.size(), 1u);
    const par::ShardFailure& f = e.report().failures[0];
    EXPECT_EQ(f.shard, 1u);
    ASSERT_TRUE(f.has_context);
    EXPECT_STREQ(f.context.op, "vle");
    EXPECT_EQ(f.context.vl, 3u);
    EXPECT_EQ(f.context.hart, f.hart);
  }
}

}  // namespace
}  // namespace rvvsvm
