// Unit tests for the reduction instructions (vredsum/vredmax/... and the
// masked form), including seed handling and vl = 0.
#include <gtest/gtest.h>

#include <limits>

#include "rvv/rvv.hpp"

namespace {

using namespace rvvsvm;
using T = std::uint32_t;

class ReduceTest : public ::testing::Test {
 protected:
  rvv::Machine machine{rvv::Machine::Config{.vlen_bits = 256}};
  rvv::MachineScope scope{machine};

  rvv::vreg<T> load(const std::vector<T>& v) {
    return rvv::vle<T>(std::span<const T>(v), v.size());
  }
};

TEST_F(ReduceTest, SumWithAndWithoutSeed) {
  const auto v = load({1, 2, 3, 4});
  EXPECT_EQ(rvv::vredsum(v, 4), 10u);
  EXPECT_EQ(rvv::vredsum(v, 4, 100u), 110u);
  EXPECT_EQ(rvv::vredsum(v, 2), 3u);  // only the active prefix
}

TEST_F(ReduceTest, SumWraps) {
  const auto v = load({0xFFFFFFFFu, 2u});
  EXPECT_EQ(rvv::vredsum(v, 2), 1u);
}

TEST_F(ReduceTest, MinMax) {
  const auto v = load({5, 1, 9, 3});
  EXPECT_EQ(rvv::vredmax(v, 4), 9u);
  EXPECT_EQ(rvv::vredmin(v, 4), 1u);
  EXPECT_EQ(rvv::vredmax(v, 4, 100u), 100u);  // seed participates
  EXPECT_EQ(rvv::vredmin(v, 4, 0u), 0u);
}

TEST_F(ReduceTest, SignedMinMax) {
  const std::vector<std::int32_t> s{-5, 3, -9};
  const auto v = rvv::vle<std::int32_t>(std::span<const std::int32_t>(s), 3);
  EXPECT_EQ(rvv::vredmin(v, 3), -9);
  EXPECT_EQ(rvv::vredmax(v, 3), 3);
}

TEST_F(ReduceTest, Bitwise) {
  const auto v = load({0b1100, 0b1010, 0b1001});
  EXPECT_EQ(rvv::vredand(v, 3), 0b1000u);
  EXPECT_EQ(rvv::vredor(v, 3), 0b1111u);
  EXPECT_EQ(rvv::vredxor(v, 3), (0b1100u ^ 0b1010u ^ 0b1001u));
}

TEST_F(ReduceTest, VlZeroReturnsSeed) {
  const auto v = load({1, 2});
  EXPECT_EQ(rvv::vredsum(v, 0), 0u);
  EXPECT_EQ(rvv::vredsum(v, 0, 42u), 42u);
  EXPECT_EQ(rvv::vredmax(v, 0), std::numeric_limits<T>::min());
}

TEST_F(ReduceTest, MaskedSumFoldsOnlyActive) {
  const auto v = load({1, 2, 3, 4});
  const auto mask = rvv::vmsgt(v, 2u, 4);
  EXPECT_EQ(rvv::vredsum_m(mask, v, 4), 7u);
  EXPECT_EQ(rvv::vredsum_m(mask, v, 4, 1u), 8u);
}

TEST_F(ReduceTest, ChargesReduceClass) {
  const auto v = load({1, 2});
  const auto before = machine.counter().count(sim::InstClass::kVectorReduce);
  static_cast<void>(rvv::vredsum(v, 2));
  static_cast<void>(rvv::vredmin(v, 2));
  EXPECT_EQ(machine.counter().count(sim::InstClass::kVectorReduce), before + 2);
}

}  // namespace
