// Unit tests for the (VLEN, LMUL, hart-count) autotuner: cache keying,
// n-bucket boundaries, replay stability, scope isolation, reconfiguration
// invalidation, the opt-out path, and the cost model's round trip.  The
// end-to-end contract (tuned call == pinned call, bit for bit) lives in the
// tune fuzz layer (src/check/properties_tune.cpp); these tests pin the
// tuner's own mechanics with hand-built measurement callbacks.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <span>
#include <sstream>
#include <thread>
#include <vector>

#include "svm/svm.hpp"
#include "tune/autotuner.hpp"
#include "tune/cost_model.hpp"
#include "tune/shape.hpp"

namespace {

using namespace rvvsvm;

tune::Key key_of(tune::Shape shape, unsigned bucket, unsigned sew, unsigned vlen,
                 unsigned harts) {
  return tune::Key{.shape = shape, .bucket = bucket, .sew = sew, .vlen = vlen,
                   .harts = harts};
}

/// Measurement stub: answers from a fixed LMUL -> counts table and records
/// how often each candidate was run.  Mechanics tests pair it with shapes
/// the committed cost model does NOT cover (flags, copy, pack, ...), so a
/// model refit can never prune a candidate out from under an assertion.
struct FakeMeasure {
  std::map<unsigned, std::uint64_t> counts;
  mutable std::map<unsigned, unsigned> calls;

  std::uint64_t operator()(unsigned lmul) const {
    ++calls[lmul];
    const auto it = counts.find(lmul);
    return it == counts.end() ? 1000 : it->second;
  }
};

TEST(AutoTuner, PicksTheMinimumCountCandidate) {
  tune::AutoTuner tuner;
  const FakeMeasure measure{.counts = {{1, 90}, {2, 70}, {4, 50}, {8, 60}}, .calls = {}};
  const auto key = key_of(tune::Shape::kScanExclusive, 6, 32, 1024, 1);
  EXPECT_EQ(tuner.choose(key, measure), 4u);
  EXPECT_EQ(tuner.lookup(key), 4u);
}

TEST(AutoTuner, TiesBreakTowardTheSmallerLmul) {
  // Equal counts: the smaller LMUL holds fewer registers for the same work.
  tune::AutoTuner tuner;
  const FakeMeasure measure{.counts = {{1, 50}, {2, 50}, {4, 50}, {8, 50}}, .calls = {}};
  EXPECT_EQ(tuner.choose(key_of(tune::Shape::kCopy, 4, 32, 512, 1), measure), 1u);
}

TEST(AutoTuner, CacheHitsSkipMeasurement) {
  tune::AutoTuner tuner;
  const FakeMeasure measure{.counts = {{1, 10}, {2, 20}, {4, 30}, {8, 40}}, .calls = {}};
  const auto key = key_of(tune::Shape::kGetFlags, 8, 32, 256, 1);
  EXPECT_EQ(tuner.choose(key, measure), 1u);
  const unsigned first_runs = measure.calls[1];
  EXPECT_EQ(tuner.choose(key, measure), 1u);
  EXPECT_EQ(measure.calls[1], first_runs);  // replayed, not re-measured
  const tune::Stats s = tuner.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(AutoTuner, EveryKeyFieldSeparatesCacheEntries) {
  // Winner depends on the key: flipping any one field must re-measure.
  tune::AutoTuner tuner;
  const FakeMeasure measure{.counts = {{1, 10}, {2, 20}, {4, 30}, {8, 40}}, .calls = {}};
  const auto base = key_of(tune::Shape::kFlagVv, 6, 32, 1024, 1);
  static_cast<void>(tuner.choose(base, measure));
  for (const auto& variant :
       {key_of(tune::Shape::kFlagVx, 6, 32, 1024, 1),  // shape
        key_of(tune::Shape::kFlagVv, 7, 32, 1024, 1),  // n bucket
        key_of(tune::Shape::kFlagVv, 6, 64, 1024, 1),  // SEW
        key_of(tune::Shape::kFlagVv, 6, 32, 512, 1),   // VLEN
        key_of(tune::Shape::kFlagVv, 6, 32, 1024, 4)}) {  // harts
    static_cast<void>(tuner.choose(variant, measure));
  }
  EXPECT_EQ(tuner.stats().misses, 6u);
  EXPECT_EQ(tuner.winners().size(), 6u);
  // And replaying the original key is still a hit.
  static_cast<void>(tuner.choose(base, measure));
  EXPECT_EQ(tuner.stats().hits, 1u);
}

TEST(AutoTuner, NBucketBoundaries) {
  EXPECT_EQ(tune::n_bucket(1), 0u);
  EXPECT_EQ(tune::n_bucket(2), 1u);
  EXPECT_EQ(tune::n_bucket(63), 5u);
  EXPECT_EQ(tune::n_bucket(64), 6u);
  EXPECT_EQ(tune::n_bucket(127), 6u);
  EXPECT_EQ(tune::n_bucket(128), 7u);
  // The cap bounds the bucket (and the measurement size) for huge requests.
  EXPECT_EQ(tune::n_bucket(std::size_t{1} << 40), tune::kMaxBucket);
  EXPECT_EQ(tune::representative_n(100), 64u);
  EXPECT_EQ(tune::representative_n(std::size_t{1} << 40), tune::kMaxMeasureN);
}

TEST(AutoTuner, InvalidateDropsEveryWinner) {
  tune::AutoTuner tuner;
  const FakeMeasure measure{.counts = {{1, 10}, {2, 20}, {4, 30}, {8, 40}}, .calls = {}};
  const auto key = key_of(tune::Shape::kPack, 5, 16, 128, 1);
  static_cast<void>(tuner.choose(key, measure));
  EXPECT_EQ(tuner.lookup(key), 1u);
  tuner.invalidate();
  EXPECT_EQ(tuner.lookup(key), 0u);
  static_cast<void>(tuner.choose(key, measure));
  EXPECT_EQ(tuner.stats().misses, 2u);
}

TEST(AutoTuner, MachineReconfigurationInvalidatesOnNextLookup) {
  // Dropping a machine's execution caches bumps the global reconfigure
  // epoch; every tuner (not just the hooked global one) re-checks it.
  rvv::Machine machine({.vlen_bits = 512});
  tune::AutoTuner tuner;
  const FakeMeasure measure{.counts = {{1, 10}, {2, 20}, {4, 30}, {8, 40}}, .calls = {}};
  const auto key = key_of(tune::Shape::kCopy, 7, 32, 512, 1);
  static_cast<void>(tuner.choose(key, measure));
  static_cast<void>(tuner.choose(key, measure));
  EXPECT_EQ(tuner.stats().hits, 1u);
  machine.invalidate_exec_caches();
  static_cast<void>(tuner.choose(key, measure));
  EXPECT_EQ(tuner.stats().misses, 2u);
}

TEST(AutoTuner, DisabledTunerAnswersLmul1WithoutCaching) {
  tune::AutoTuner tuner;
  tuner.set_enabled(false);
  const FakeMeasure measure{.counts = {{1, 90}, {2, 70}, {4, 50}, {8, 40}}, .calls = {}};
  const auto key = key_of(tune::Shape::kGather, 6, 32, 1024, 1);
  EXPECT_EQ(tuner.choose(key, measure), 1u);
  EXPECT_TRUE(measure.calls.empty());
  EXPECT_EQ(tuner.lookup(key), 0u);
}

TEST(AutoTuner, TunerScopeOverridesAndRestores) {
  tune::AutoTuner outer;
  tune::AutoTuner inner;
  EXPECT_EQ(&tune::AutoTuner::active(), &tune::AutoTuner::global());
  {
    tune::TunerScope outer_scope(outer);
    EXPECT_EQ(&tune::AutoTuner::active(), &outer);
    {
      tune::TunerScope inner_scope(inner);
      EXPECT_EQ(&tune::AutoTuner::active(), &inner);
    }
    EXPECT_EQ(&tune::AutoTuner::active(), &outer);
  }
  EXPECT_EQ(&tune::AutoTuner::active(), &tune::AutoTuner::global());
}

TEST(AutoTuner, SharedTunerIsThreadSafe) {
  // Many threads racing the same key: choose() holds the lock across
  // measurement, so exactly one miss measures and everyone agrees after.
  tune::AutoTuner tuner;
  const auto key = key_of(tune::Shape::kEnumerate, 9, 32, 1024, 1);
  std::vector<std::thread> threads;
  std::vector<unsigned> answers(8, 0);
  for (std::size_t t = 0; t < answers.size(); ++t) {
    threads.emplace_back([&, t] {
      const FakeMeasure measure{.counts = {{1, 40}, {2, 20}, {4, 30}, {8, 50}}, .calls = {}};
      answers[t] = tuner.choose(key, measure);
    });
  }
  for (auto& th : threads) th.join();
  for (const unsigned a : answers) EXPECT_EQ(a, 2u);
  EXPECT_EQ(tuner.stats().misses, 1u);
  EXPECT_EQ(tuner.stats().hits, answers.size() - 1);
}

TEST(AutoTuner, TunedKernelReplaysAreStable) {
  // End to end through a real kernel: the second tuned call hits the cache
  // and the recorded winner matches what lookup() reports.
  rvv::Machine machine({.vlen_bits = 1024});
  rvv::MachineScope scope(machine);
  tune::AutoTuner tuner;
  tune::TunerScope ts(tuner);
  std::vector<std::uint32_t> data(1000, 1);
  svm::plus_scan<std::uint32_t>(std::span<std::uint32_t>(data));
  const unsigned winner = tuner.lookup(
      key_of(tune::Shape::kScanInclusive, tune::n_bucket(1000), 32, 1024, 1));
  ASSERT_NE(winner, 0u);
  std::vector<std::uint32_t> again(1000, 1);
  svm::plus_scan<std::uint32_t>(std::span<std::uint32_t>(again));
  EXPECT_EQ(tuner.stats().hits, 1u);
  EXPECT_EQ(data, again);
}

TEST(AutoTuner, LargeNSingleStripPrefersLargeLmul) {
  // n = VLMAX(LMUL=8): LMUL=8 runs one strip where LMUL=1 runs eight, so
  // measurement must land on 8 (the unsegmented scan never spills).
  rvv::Machine machine({.vlen_bits = 1024});
  rvv::MachineScope scope(machine);
  tune::AutoTuner tuner;
  tune::TunerScope ts(tuner);
  std::vector<std::uint32_t> data(256, 1);
  svm::plus_scan<std::uint32_t>(std::span<std::uint32_t>(data));
  EXPECT_EQ(tuner.lookup(key_of(tune::Shape::kScanInclusive,
                                tune::n_bucket(256), 32, 1024, 1)),
            8u);
}

TEST(CostModel, JsonRoundTripPreservesCoefficients) {
  tune::CostModel model;
  model.set(tune::Shape::kScanInclusive, 1,
            {.base = 1.0, .per_block = 36.0, .per_block_log = 5.0, .valid = true});
  model.set(tune::Shape::kScanInclusive, 8,
            {.base = 1.0, .per_block = 11.0, .per_block_log = 5.0, .valid = true});
  std::ostringstream os;
  model.write_json(os);
  std::istringstream is(os.str());
  const tune::CostModel parsed = tune::CostModel::from_json(is);
  for (const unsigned lmul : {1u, 8u}) {
    const auto& want = model.coefficients(tune::Shape::kScanInclusive, lmul);
    const auto& got = parsed.coefficients(tune::Shape::kScanInclusive, lmul);
    EXPECT_TRUE(got.valid);
    EXPECT_DOUBLE_EQ(got.base, want.base);
    EXPECT_DOUBLE_EQ(got.per_block, want.per_block);
    EXPECT_DOUBLE_EQ(got.per_block_log, want.per_block_log);
  }
  EXPECT_FALSE(parsed.coefficients(tune::Shape::kScanInclusive, 2).valid);
  EXPECT_FALSE(parsed.covers(tune::Shape::kScanInclusive));
}

TEST(CostModel, PredictMirrorsTheStripMineStructure) {
  tune::CostModel model;
  model.set(tune::Shape::kScanInclusive, 1,
            {.base = 1.0, .per_block = 11.0, .per_block_log = 5.0, .valid = true});
  // VLEN=1024 e32 LMUL=1: VLMAX = 32, so n = 320 is 10 blocks of depth 5.
  EXPECT_DOUBLE_EQ(model.predict(tune::Shape::kScanInclusive, 1, 320, 1024, 32),
                   1.0 + 10.0 * (11.0 + 5.0 * 5.0));
  // n = 0 degrades to the base term.
  EXPECT_DOUBLE_EQ(model.predict(tune::Shape::kScanInclusive, 1, 0, 1024, 32), 1.0);
}

TEST(CostModel, MalformedJsonThrowsAndUnknownShapesAreSkipped) {
  std::istringstream bad("{\"shapes\": {\"scan_inclusive\": ");
  EXPECT_THROW(static_cast<void>(tune::CostModel::from_json(bad)),
               std::runtime_error);
  std::istringstream unknown(
      "{\"version\": 1, \"shapes\": {\"no_such_shape\": {\"1\": [1, 2, 3]}}}");
  EXPECT_TRUE(tune::CostModel::from_json(unknown).empty());
}

}  // namespace
