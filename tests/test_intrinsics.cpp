// Tests for the paper-style intrinsic alias layer: the aliases must be
// exact synonyms of the templated API in both results and retired
// instructions, so code ported from the paper's listings measures the same.
#include <gtest/gtest.h>

#include <numeric>

#include "rvv/intrinsics.hpp"
#include "svm/scan.hpp"
#include "test_util.hpp"

namespace {

using namespace rvvsvm;
using namespace rvvsvm::rvv::intrinsics;

class IntrinsicsTest : public ::testing::Test {
 protected:
  rvv::Machine machine{rvv::Machine::Config{.vlen_bits = 256}};
  rvv::MachineScope scope{machine};
};

TEST_F(IntrinsicsTest, VsetvlFamilies) {
  EXPECT_EQ(vsetvl_e32m1(100), 8u);
  EXPECT_EQ(vsetvl_e32m2(100), 16u);
  EXPECT_EQ(vsetvl_e32m4(100), 32u);
  EXPECT_EQ(vsetvl_e32m8(100), 64u);
  EXPECT_EQ(vsetvl_e32m8(10), 10u);
  EXPECT_EQ(vsetvlmax_e32m1(), 8u);
}

TEST_F(IntrinsicsTest, LoadComputeStore) {
  std::vector<std::uint32_t> a(8);
  std::iota(a.begin(), a.end(), 0u);
  const std::size_t vl = vsetvl_e32m1(a.size());
  vuint32m1_t va = vle32_v_u32m1(a.data(), vl);
  va = vadd_vx_u32m1(va, 100u, vl);
  va = vadd_vv_u32m1(va, va, vl);
  vse32(a.data(), va, vl);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(a[i], 2 * (i + 100));
}

TEST_F(IntrinsicsTest, MaskAliases) {
  std::vector<std::uint32_t> f{1, 0, 1, 0};
  const auto vf = vle32_v_u32m1(f.data(), 4);
  const vbool32_t m = vmsne_vx_u32m1_b32(vf, 0u, 4);
  EXPECT_TRUE(m[0]);
  EXPECT_FALSE(m[1]);
  const auto io = viota_m_u32m1(m, 4);
  EXPECT_EQ(io[0], 0u);
  EXPECT_EQ(io[2], 1u);
  const vbool32_t eq = vmseq_vx_u32m1_b32(vf, 1u, 4);
  EXPECT_TRUE(eq[0]);
}

TEST_F(IntrinsicsTest, MoveAndSlideAliases) {
  const auto z = vmv_v_x_u32m1(0u, 4);
  const auto s = vmv_s_x_u32m1(z, 7u, 4);
  EXPECT_EQ(s[0], 7u);
  EXPECT_EQ(s[1], 0u);
  std::vector<std::uint32_t> d{1, 2, 3, 4};
  const auto vd = vle32_v_u32m1(d.data(), 4);
  const auto up = vslideup_vx_u32m1(z, vd, 2, 4);
  EXPECT_EQ(up[0], 0u);
  EXPECT_EQ(up[2], 1u);
}

TEST_F(IntrinsicsTest, MaskedAddAliases) {
  std::vector<std::uint32_t> a{1, 2, 3, 4};
  const auto va = vle32_v_u32m1(a.data(), 4);
  const auto m = vmsne_vx_u32m1_b32(va, 2u, 4);
  const auto r = vadd_vv_u32m1_m(m, va, va, va, 4);
  EXPECT_EQ(r[0], 2u);
  EXPECT_EQ(r[1], 2u);  // inactive keeps maskedoff (va)
  const auto rx = vadd_vx_u32m1_m(m, va, va, 10u, 4);
  EXPECT_EQ(rx[3], 14u);
  EXPECT_EQ(rx[1], 2u);
}

TEST_F(IntrinsicsTest, IndexedStoreAlias) {
  std::vector<std::uint32_t> dst(4, 0);
  std::vector<std::uint32_t> idx{3, 2, 1, 0};
  std::vector<std::uint32_t> val{1, 2, 3, 4};
  const auto vi = vle32_v_u32m1(idx.data(), 4);
  const auto vv = vle32_v_u32m1(val.data(), 4);
  vsuxei32(dst.data(), dst.size(), vi, vv, 4);
  EXPECT_EQ(dst, (std::vector<std::uint32_t>{4, 3, 2, 1}));
}

TEST_F(IntrinsicsTest, ArithmeticAliasFamily) {
  std::vector<std::uint32_t> a{8, 12, 16, 20};
  std::vector<std::uint32_t> b{1, 2, 3, 4};
  const auto va = vle32_v_u32m1(a.data(), 4);
  const auto vb = vle32_v_u32m1(b.data(), 4);
  EXPECT_EQ(vsub_vv_u32m1(va, vb, 4)[2], 13u);
  EXPECT_EQ(vsub_vx_u32m1(va, 8u, 4)[0], 0u);
  EXPECT_EQ(vrsub_vx_u32m1(vb, 10u, 4)[3], 6u);
  EXPECT_EQ(vmul_vv_u32m1(va, vb, 4)[1], 24u);
  EXPECT_EQ(vand_vx_u32m1(va, 12u, 4)[1], 12u);
  EXPECT_EQ(vor_vx_u32m1(vb, 8u, 4)[0], 9u);
  EXPECT_EQ(vxor_vv_u32m1(va, va, 4)[0], 0u);
  EXPECT_EQ(vsll_vx_u32m1(vb, 4u, 4)[0], 16u);
  EXPECT_EQ(vsrl_vx_u32m1(va, 2u, 4)[0], 2u);
  const auto m = vmsgtu_vx_u32m1_b32(va, 12u, 4);
  EXPECT_EQ(vmerge_vvm_u32m1(m, va, vb, 4)[0], 1u);
  EXPECT_EQ(vmerge_vvm_u32m1(m, va, vb, 4)[3], 20u);
}

TEST_F(IntrinsicsTest, MaskUtilityAliasFamily) {
  std::vector<std::uint32_t> f{0, 3, 0, 7};
  const auto vf = vle32_v_u32m1(f.data(), 4);
  const auto m = vmsne_vx_u32m1_b32(vf, 0u, 4);
  EXPECT_EQ(vcpop_m_b32(m, 4), 2u);
  EXPECT_EQ(vfirst_m_b32(m, 4), 1);
  EXPECT_TRUE(vmsbf_m_b32(m, 4)[0]);
  EXPECT_FALSE(vmsbf_m_b32(m, 4)[1]);
  EXPECT_TRUE(vmsif_m_b32(m, 4)[1]);
  EXPECT_TRUE(vmsof_m_b32(m, 4)[1]);
  EXPECT_FALSE(vmsof_m_b32(m, 4)[3]);
  const auto eq = vmseq_vv_u32m1_b32(vf, vf, 4);
  EXPECT_EQ(vcpop_m_b32(vmand_mm_b32(m, eq, 4), 4), 2u);
  EXPECT_EQ(vcpop_m_b32(vmnot_m_b32(m, 4), 4), 2u);
  const auto lt = vmsltu_vx_u32m1_b32(vf, 4u, 4);
  EXPECT_EQ(vcpop_m_b32(lt, 4), 3u);
  EXPECT_EQ(vid_v_u32m1(4)[3], 3u);
}

TEST_F(IntrinsicsTest, PermuteAndReduceAliasFamily) {
  std::vector<std::uint32_t> d{10, 20, 30, 40};
  const auto vd = vle32_v_u32m1(d.data(), 4);
  EXPECT_EQ(vslidedown_vx_u32m1(vd, 1, 4)[0], 20u);
  EXPECT_EQ(vslide1up_vx_u32m1(vd, 5u, 4)[0], 5u);
  EXPECT_EQ(vslide1down_vx_u32m1(vd, 5u, 4)[3], 5u);
  std::vector<std::uint32_t> idx{3, 2, 1, 0};
  const auto vi = vle32_v_u32m1(idx.data(), 4);
  EXPECT_EQ(vrgather_vv_u32m1(vd, vi, 4)[0], 40u);
  const auto m = vmsgtu_vx_u32m1_b32(vd, 15u, 4);
  EXPECT_EQ(vcompress_vm_u32m1(vd, m, 4)[0], 20u);
  EXPECT_EQ(vredsum_vs_u32m1(vd, 4), 100u);
  EXPECT_EQ(vredsum_vs_u32m1(vd, 4, 1u), 101u);
  EXPECT_EQ(vredmaxu_vs_u32m1(vd, 4), 40u);
  EXPECT_EQ(vmv_x_s_u32m1(vd), 10u);
}

// A paper-listing kernel written with aliases must retire exactly the same
// instruction stream as the library's own kernel modulo the documented
// schedule, and at minimum: identical results.
TEST_F(IntrinsicsTest, ListingScanMatchesLibraryScan) {
  const auto input = test::random_vector<std::uint32_t>(100, 42);

  auto lib = input;
  svm::plus_scan<std::uint32_t>(std::span<std::uint32_t>(lib));

  auto listing = input;
  {
    int n = static_cast<int>(listing.size());
    unsigned int* src = listing.data();
    std::size_t vl;
    const std::size_t vlmax = vsetvlmax_e32m1();
    unsigned int carry = 0;
    const vuint32m1_t vec_zero = vmv_v_x_u32m1(0, vlmax);
    for (; n > 0; n -= static_cast<int>(vl)) {
      vl = vsetvl_e32m1(static_cast<std::size_t>(n));
      auto x = vle32_v_u32m1(src, vl);
      for (std::size_t offset = 1; offset < vl; offset <<= 1) {
        const auto y = vslideup_vx_u32m1(vec_zero, x, offset, vl);
        x = vadd_vv_u32m1(x, y, vl);
      }
      x = vadd_vx_u32m1(x, carry, vl);
      vse32(src, x, vl);
      carry = src[vl - 1];
      src += vl;
    }
  }
  EXPECT_EQ(listing, lib);
}

}  // namespace
