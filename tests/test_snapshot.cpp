// Machine snapshot/restore (src/snap): directed tests for the container
// format, the bit-identical warm-start guarantee, pool round-trips at every
// hart count, the serve cold-start path, the epoch protocol that keeps
// stale pre-restore caches from replaying, and — the corruption-robustness
// suite — a sweep that truncates a snapshot at every byte boundary and
// flips every bit, requiring a typed SnapshotTrap and an untouched target
// machine for each corruption.
//
// The snap fuzz layer (src/check/properties_snap.cpp) covers the same
// contracts over random shapes; these tests pin each mechanism exactly.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "check/fault_injection.hpp"
#include "par/par.hpp"
#include "rvv/reconfigure.hpp"
#include "rvv/rvv.hpp"
#include "serve/service.hpp"
#include "snap/snapshot.hpp"
#include "svm/svm.hpp"
#include "tune/autotuner.hpp"

namespace rvvsvm {
namespace {

using u32 = std::uint32_t;
using u64 = std::uint64_t;

std::vector<u32> iota_data(std::size_t n) {
  std::vector<u32> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

void expect_same_counts(const sim::CountSnapshot& got,
                        const sim::CountSnapshot& want, const char* what) {
  for (std::size_t k = 0; k < sim::kNumInstClasses; ++k) {
    const auto cls = static_cast<sim::InstClass>(k);
    EXPECT_EQ(got.count(cls), want.count(cls))
        << what << ": class " << sim::to_string(cls);
  }
}

/// Warm a machine: two passes promote the strip-mine trace to stable, and
/// the second pass replays it.
void warm(rvv::Machine& m, std::size_t n = 3000) {
  rvv::MachineScope scope(m);
  for (int pass = 0; pass < 2; ++pass) {
    auto d = iota_data(n);
    svm::plus_scan<u32, 2>(std::span<u32>(d));
  }
}

/// One measured kernel run; returns the count delta.
sim::CountSnapshot run_once(rvv::Machine& m, std::size_t n = 3000) {
  rvv::MachineScope scope(m);
  const sim::CountSnapshot pre = m.counter().snapshot();
  auto d = iota_data(n);
  svm::plus_scan<u32, 2>(std::span<u32>(d));
  return m.counter().snapshot() - pre;
}

// --- container format -------------------------------------------------------

TEST(SnapshotFormat, InspectReportsVersionAndSections) {
  rvv::Machine m({.vlen_bits = 256});
  const snap::Blob blob = snap::save_machine(m);
  const snap::Info info = snap::inspect(blob);
  EXPECT_EQ(info.version, snap::kFormatVersion);
  ASSERT_EQ(info.sections.size(), 1u);
  EXPECT_EQ(info.sections[0].id, snap::kSectionMachine);
  EXPECT_GT(info.sections[0].size, 0u);
}

TEST(SnapshotFormat, TunerSectionAppearsWhenRequested) {
  rvv::Machine m({.vlen_bits = 256});
  tune::AutoTuner tuner;
  const snap::Blob blob = snap::save_machine(m, &tuner);
  const snap::Info info = snap::inspect(blob);
  ASSERT_EQ(info.sections.size(), 2u);
  EXPECT_EQ(info.sections[1].id, snap::kSectionTuner);
}

TEST(SnapshotFormat, FileRoundTrip) {
  rvv::Machine m({.vlen_bits = 128});
  warm(m);
  const snap::Blob blob = snap::save_machine(m);
  const std::string path = ::testing::TempDir() + "snap_file_roundtrip.snap";
  snap::write_file(path, blob);
  EXPECT_EQ(snap::read_file(path), blob);
  std::remove(path.c_str());
}

TEST(SnapshotFormat, WriteFileReplacesAtomically) {
  // write_file goes through <path>.tmp + rename, so a rewrite either fully
  // lands or leaves the previous file intact — and never leaves the .tmp.
  rvv::Machine m({.vlen_bits = 128});
  const snap::Blob first = snap::save_machine(m);
  warm(m);
  const snap::Blob second = snap::save_machine(m);
  const std::string path = ::testing::TempDir() + "snap_atomic_replace.snap";
  snap::write_file(path, first);
  snap::write_file(path, second);
  EXPECT_EQ(snap::read_file(path), second);
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr) << "temp file left behind after rename";
  if (tmp != nullptr) static_cast<void>(std::fclose(tmp));
  std::remove(path.c_str());
}

TEST(SnapshotFormat, WriteFileUnwritablePathTrapsCleanly) {
  rvv::Machine m({.vlen_bits = 128});
  const snap::Blob blob = snap::save_machine(m);
  const std::string path = "/nonexistent-dir-for-snap-test/machine.snap";
  EXPECT_THROW(snap::write_file(path, blob), SnapshotTrap);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr) << "unwritable path produced a file";
  if (f != nullptr) static_cast<void>(std::fclose(f));
}

TEST(SnapshotFormat, WrongVersionRejected) {
  rvv::Machine m({.vlen_bits = 128});
  snap::Blob blob = snap::save_machine(m);
  blob[8] ^= 1;  // version low byte — also breaks the header CRC
  rvv::Machine target({.vlen_bits = 128});
  EXPECT_THROW(snap::restore_machine(target, blob), SnapshotTrap);
}

TEST(SnapshotFormat, TrailingBytesRejected) {
  rvv::Machine m({.vlen_bits = 128});
  snap::Blob blob = snap::save_machine(m);
  blob.push_back(0);
  rvv::Machine target({.vlen_bits = 128});
  EXPECT_THROW(snap::restore_machine(target, blob), SnapshotTrap);
}

// --- machine round-trip -----------------------------------------------------

TEST(SnapshotMachine, EmptyMachineRoundTrip) {
  rvv::Machine a({.vlen_bits = 512});
  const snap::Blob blob = snap::save_machine(a);
  rvv::Machine b({.vlen_bits = 512});
  snap::restore_machine(b, blob);
  expect_same_counts(b.counter().snapshot(), a.counter().snapshot(), "empty");
  // Both machines behave identically from here.
  expect_same_counts(run_once(b), run_once(a), "first run after restore");
}

TEST(SnapshotMachine, WarmedMachineRoundTripBitIdentical) {
  rvv::Machine a({.vlen_bits = 256});
  warm(a);
  const snap::Blob blob = snap::save_machine(a);

  rvv::Machine b({.vlen_bits = 256});
  snap::restore_machine(b, blob);
  expect_same_counts(b.counter().snapshot(), a.counter().snapshot(),
                     "restored ledger");
  EXPECT_GT(b.exec_cache().pending_trace_count() +
                b.exec_cache().pending_decoded_count(),
            0u)
      << "a warmed snapshot should park cache content for adoption";

  // The restored machine reruns the kernel bit-identically in counts, and
  // the parked trace is adopted (stable after its first live recording).
  expect_same_counts(run_once(b), run_once(a), "rerun");
  EXPECT_GT(b.exec_cache().stats().trace_adoptions, 0u);
  expect_same_counts(run_once(b), run_once(a), "second rerun");
}

TEST(SnapshotMachine, RestoredEqualsFreshMachineCounts) {
  // regen_tables builds fresh machines; a restored machine must charge the
  // same counts for the same kernel or the paper tables would drift.
  rvv::Machine fresh({.vlen_bits = 256});
  warm(fresh);

  rvv::Machine source({.vlen_bits = 256});
  warm(source);
  rvv::Machine restored({.vlen_bits = 256});
  snap::restore_machine(restored, snap::save_machine(source));

  expect_same_counts(run_once(restored), run_once(fresh),
                     "restored vs fresh kernel run");
}

TEST(SnapshotMachine, RegfileTelemetryRoundTrips) {
  rvv::Machine a({.vlen_bits = 128, .model_register_pressure = true});
  {
    // LMUL=8 at VLEN=128 puts real pressure on the file: spills happen.
    rvv::MachineScope scope(a);
    auto d = iota_data(2000);
    std::vector<u32> flags(d.size(), 0);
    for (std::size_t i = 0; i < flags.size(); i += 97) flags[i] = 1;
    svm::seg_plus_scan<u32, 8>(std::span<u32>(d), std::span<const u32>(flags));
  }
  ASSERT_NE(a.regfile(), nullptr);
  rvv::Machine b({.vlen_bits = 128, .model_register_pressure = true});
  snap::restore_machine(b, snap::save_machine(a));
  ASSERT_NE(b.regfile(), nullptr);
  EXPECT_EQ(b.regfile()->spill_count(), a.regfile()->spill_count());
  EXPECT_EQ(b.regfile()->reload_count(), a.regfile()->reload_count());
  EXPECT_EQ(b.regfile()->peak_registers(), a.regfile()->peak_registers());
}

TEST(SnapshotMachine, TunerCacheRoundTripsAndSkipsMeasurement) {
  const rvv::Machine::Config cfg{.vlen_bits = 256};
  tune::AutoTuner tuner;
  rvv::Machine a(cfg);
  {
    tune::TunerScope ts(tuner);
    rvv::MachineScope scope(a);
    auto d = iota_data(2000);
    svm::plus_scan<u32>(std::span<u32>(d));  // tuned: measures candidates
  }
  ASSERT_GT(tuner.stats().measurements, 0u);
  ASSERT_FALSE(tuner.winners().empty());

  tune::AutoTuner restored_tuner;
  rvv::Machine b(cfg);
  snap::restore_machine(b, snap::save_machine(a, &tuner), &restored_tuner);

  // The restored tuner replays the winner without re-measuring.
  {
    tune::TunerScope ts(restored_tuner);
    rvv::MachineScope scope(b);
    auto d = iota_data(2000);
    svm::plus_scan<u32>(std::span<u32>(d));
  }
  EXPECT_EQ(restored_tuner.stats().measurements, 0u);
  EXPECT_EQ(restored_tuner.stats().hits, 1u);
}

// --- epoch protocol ---------------------------------------------------------

TEST(SnapshotEpoch, RestoreInvalidatesPreRestoreState) {
  const rvv::Machine::Config cfg{.vlen_bits = 256};
  rvv::Machine source(cfg);
  warm(source);
  const snap::Blob blob = snap::save_machine(source);

  // The target is itself warm: live stable traces and a tuner cache keyed
  // to the pre-restore epoch.
  rvv::Machine target(cfg);
  warm(target);
  ASSERT_GT(target.exec_cache().trace_count(), 0u);
  tune::AutoTuner stale_tuner;
  {
    tune::TunerScope ts(stale_tuner);
    rvv::MachineScope scope(target);
    auto d = iota_data(2000);
    svm::plus_scan<u32>(std::span<u32>(d));
  }
  ASSERT_FALSE(stale_tuner.winners().empty());

  const u64 invalidations_before = target.exec_cache().stats().invalidations;
  const u64 epoch_before = rvv::reconfigure_epoch();
  snap::restore_machine(target, blob);

  // The restore went through the single invalidation path: epoch bumped,
  // live caches dropped (snapshot content is parked, not live).
  EXPECT_GT(rvv::reconfigure_epoch(), epoch_before);
  EXPECT_GT(target.exec_cache().stats().invalidations, invalidations_before);
  EXPECT_EQ(target.exec_cache().trace_count(), 0u);

  // A tuner that was NOT part of the restore sees the epoch bump and drops
  // its pre-restore winners instead of replaying them (stale cross-machine
  // state can never replay).
  {
    tune::TunerScope ts(stale_tuner);
    rvv::MachineScope scope(target);
    auto d = iota_data(2000);
    svm::plus_scan<u32>(std::span<u32>(d));
  }
  EXPECT_EQ(stale_tuner.stats().hits, 0u)
      << "pre-restore tuner entries replayed across the epoch bump";
}

// --- rejection and corruption robustness ------------------------------------

TEST(SnapshotReject, MismatchedConfigLeavesTargetUntouched) {
  rvv::Machine source({.vlen_bits = 256});
  warm(source);
  const snap::Blob blob = snap::save_machine(source);

  {
    rvv::Machine target({.vlen_bits = 512});
    warm(target);
    const sim::CountSnapshot before = target.counter().snapshot();
    EXPECT_THROW(snap::restore_machine(target, blob), SnapshotTrap);
    expect_same_counts(target.counter().snapshot(), before, "vlen mismatch");
  }
  {
    rvv::Machine target(
        {.vlen_bits = 256, .model_register_pressure = false});
    warm(target);
    const sim::CountSnapshot before = target.counter().snapshot();
    EXPECT_THROW(snap::restore_machine(target, blob), SnapshotTrap);
    expect_same_counts(target.counter().snapshot(), before,
                       "pressure mismatch");
  }
}

TEST(SnapshotReject, PoolSnapshotIntoMachineAndViceVersa) {
  rvv::Machine m({.vlen_bits = 128});
  const snap::Blob machine_blob = snap::save_machine(m);

  par::HartPool pool({.harts = 2, .shard_size = 64,
                      .machine = {.vlen_bits = 128}});
  const snap::Blob pool_blob = snap::save_pool(pool);

  rvv::Machine target({.vlen_bits = 128});
  EXPECT_THROW(snap::restore_machine(target, pool_blob), SnapshotTrap);
  par::HartPool pool2({.harts = 2, .shard_size = 64,
                       .machine = {.vlen_bits = 128}});
  EXPECT_THROW(snap::restore_pool(pool2, machine_blob), SnapshotTrap);
}

/// The corruption sweep: every truncation boundary and every flipped bit of
/// a real warmed snapshot must surface as SnapshotTrap — never UB, never a
/// partially restored machine.  Runs under ASan/UBSan in CI.
TEST(SnapshotCorruption, TruncationAtEveryByteRejected) {
  rvv::Machine source({.vlen_bits = 128});
  warm(source, 600);
  const snap::Blob blob = snap::save_machine(source);

  rvv::Machine target({.vlen_bits = 128});
  warm(target, 600);
  const sim::CountSnapshot before = target.counter().snapshot();
  for (std::size_t len = 0; len < blob.size(); ++len) {
    snap::Blob cut(blob.begin(),
                   blob.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(snap::restore_machine(target, cut), SnapshotTrap)
        << "truncation to " << len << " bytes was accepted";
  }
  expect_same_counts(target.counter().snapshot(), before,
                     "target after truncation sweep");
  // The pristine blob still restores: the sweep did not damage the target.
  snap::restore_machine(target, blob);
  expect_same_counts(target.counter().snapshot(), source.counter().snapshot(),
                     "restore after sweep");
}

TEST(SnapshotCorruption, EveryBitFlipRejected) {
  // An empty machine keeps the blob small enough to flip every single bit.
  rvv::Machine source({.vlen_bits = 128});
  const snap::Blob blob = snap::save_machine(source);

  rvv::Machine target({.vlen_bits = 128});
  const sim::CountSnapshot before = target.counter().snapshot();
  for (std::size_t bit = 0; bit < blob.size() * 8; ++bit) {
    snap::Blob bad = blob;
    bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_THROW(snap::restore_machine(target, bad), SnapshotTrap)
        << "bit flip at " << bit << " was accepted";
  }
  expect_same_counts(target.counter().snapshot(), before,
                     "target after bit-flip sweep");
}

TEST(SnapshotCorruption, HeaderPayloadBitFlipsOnWarmSnapshot) {
  // The warmed-blob variant flips a stride of bits across header AND
  // section payloads (the full sweep would be slow at this size).
  rvv::Machine source({.vlen_bits = 128});
  warm(source, 600);
  const snap::Blob blob = snap::save_machine(source);
  rvv::Machine target({.vlen_bits = 128});
  for (std::size_t bit = 0; bit < blob.size() * 8; bit += 41) {
    snap::Blob bad = blob;
    bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_THROW(snap::restore_machine(target, bad), SnapshotTrap)
        << "bit flip at " << bit << " was accepted";
  }
}

// --- crafted (CRC-valid) corruption -----------------------------------------
//
// The sweeps above are caught by the section CRCs, which anyone producing a
// snapshot file can recompute — so the field-range validation behind the
// CRCs must hold on CRC-valid input too.  These helpers re-derive enough of
// the version-1 layout (DESIGN.md §11) to patch one field and fix the CRC.

u32 crc32_ieee(const std::uint8_t* data, std::size_t size) {
  u32 crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= data[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? 0xEDB88320u ^ (crc >> 1) : crc >> 1;
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

u32 u32_at(const snap::Blob& blob, std::size_t off) {
  u32 v = 0;
  for (std::size_t i = 0; i < 4; ++i) v |= u32{blob[off + i]} << (8 * i);
  return v;
}

void put_u32(snap::Blob& blob, std::size_t off, u32 v) {
  for (std::size_t i = 0; i < 4; ++i) {
    blob[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

struct SectionRef {
  u32 id = 0;
  std::size_t header = 0;   ///< offset of the section header
  std::size_t payload = 0;  ///< offset of the payload bytes
  std::size_t size = 0;
};

std::vector<SectionRef> section_refs(const snap::Blob& blob) {
  std::vector<SectionRef> refs;
  std::size_t pos = 24;  // container header: magic + version + flags + n + crc
  const u32 count = u32_at(blob, 16);
  for (u32 i = 0; i < count; ++i) {
    SectionRef ref;
    ref.id = u32_at(blob, pos);
    ref.header = pos;
    std::uint64_t size = 0;
    for (int b = 0; b < 8; ++b) {
      size |= std::uint64_t{blob[pos + 4 + static_cast<std::size_t>(b)]}
              << (8 * b);
    }
    ref.size = static_cast<std::size_t>(size);
    ref.payload = pos + 16;
    pos = ref.payload + ref.size;
    refs.push_back(ref);
  }
  return refs;
}

void fix_section_crc(snap::Blob& blob, const SectionRef& ref) {
  put_u32(blob, ref.header + 12, crc32_ieee(blob.data() + ref.payload, ref.size));
}

/// Offset, within a machine-section, of the freelist table's entry count.
std::size_t freelist_count_offset(const snap::Blob& blob,
                                  const SectionRef& sec) {
  std::size_t off = sec.payload;
  off += 4 + 3;                         // VLEN + three config flags
  off += 4 + sim::kNumInstClasses * 8;  // counter ledger
  off += 4 + 4 + 8;                     // vsetvl memo
  const bool has_regfile = blob[off] != 0;
  off += 1;
  if (has_regfile) off += 5 * 8 + 4;    // register-file telemetry
  off += 8 * 8;                         // buffer-pool stats
  return off;
}

TEST(SnapshotCorruption, CrcValidFreelistClassOutOfRangeRejected) {
  // A freelist class below kMinClass names a block too small for the pool's
  // BlockHeader; accepting one would make restore write past the block.
  rvv::Machine source({.vlen_bits = 128});
  warm(source);  // parks recycled blocks: the freelist table is non-empty
  const snap::Blob blob = snap::save_machine(source);

  const std::vector<SectionRef> secs = section_refs(blob);
  ASSERT_FALSE(secs.empty());
  ASSERT_EQ(secs[0].id, snap::kSectionMachine);
  const std::size_t count_off = freelist_count_offset(blob, secs[0]);
  ASSERT_GT(u32_at(blob, count_off), 0u)
      << "warmed machine should park at least one block";
  // Guard against layout drift: the entry we are about to patch must hold a
  // class the loader accepts, or the offsets above no longer line up.
  const std::size_t cls_off = count_off + 4;
  ASSERT_GE(u32_at(blob, cls_off), sim::BufferPool::kMinClass);
  ASSERT_LT(u32_at(blob, cls_off), sim::BufferPool::kNumClasses);

  rvv::Machine target({.vlen_bits = 128});
  const sim::CountSnapshot before = target.counter().snapshot();
  for (const u32 cls : {0u, 1u, sim::BufferPool::kMinClass - 1,
                        sim::BufferPool::kNumClasses, 0xFFFFFFFFu}) {
    snap::Blob bad = blob;
    put_u32(bad, cls_off, cls);
    fix_section_crc(bad, secs[0]);
    EXPECT_THROW(snap::restore_machine(target, bad), SnapshotTrap)
        << "freelist class " << cls << " was accepted";
  }
  expect_same_counts(target.counter().snapshot(), before,
                     "target after crafted freelist corruption");
  // The pristine blob still restores.
  snap::restore_machine(target, blob);
  expect_same_counts(target.counter().snapshot(), source.counter().snapshot(),
                     "restore after crafted corruption");
}

// --- checkpoint / rollback (chaos) ------------------------------------------

TEST(SnapshotCheckpoint, RollbackMakesChaosExcursionInvisible) {
  rvv::Machine m({.vlen_bits = 256});
  warm(m);
  snap::Checkpoint checkpoint(m);

  // Golden pass.
  const sim::CountSnapshot golden = run_once(m);

  // Rollback, then the same pass with an injected trap mid-kernel.
  checkpoint.rollback();
  check::FaultInjector injector({.trap_at_instruction = 40});
  {
    rvv::MachineScope scope(m);
    m.set_fault_hook(&injector);
    auto d = iota_data(3000);
    EXPECT_THROW((svm::plus_scan<u32, 2>(std::span<u32>(d))), InjectedTrap);
    m.set_fault_hook(nullptr);
  }
  EXPECT_EQ(injector.fired(), 1u);

  // Rollback again: the rerun must be bit-identical to the golden pass.
  checkpoint.rollback();
  expect_same_counts(run_once(m), golden, "post-chaos rerun");
}

// --- pool round-trip --------------------------------------------------------

class SnapshotPool : public ::testing::TestWithParam<unsigned> {};

TEST_P(SnapshotPool, RoundTripAtHartCount) {
  const unsigned harts = GetParam();
  const par::HartPool::Config cfg{.harts = harts, .shard_size = 128,
                                  .machine = {.vlen_bits = 256}};

  par::HartPool a(cfg);
  const auto job = [&](par::HartPool& pool) {
    pool.for_shards(harts * 3, [&](std::size_t shard) {
      auto d = iota_data(200 + shard);
      svm::plus_scan<u32, 2>(std::span<u32>(d));
    });
  };
  job(a);
  job(a);  // second pass warms the per-hart trace caches

  const snap::Blob blob = snap::save_pool(a);
  par::HartPool b(cfg);
  snap::restore_pool(b, blob);
  expect_same_counts(b.merged_counts(), a.merged_counts(), "restored pool");

  // Identical behavior from the warm state onward.
  job(a);
  job(b);
  expect_same_counts(b.merged_counts(), a.merged_counts(), "pool rerun");
}

INSTANTIATE_TEST_SUITE_P(HartCounts, SnapshotPool,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(SnapshotPoolMisc, HartCountMismatchRejected) {
  par::HartPool a({.harts = 2, .shard_size = 64,
                   .machine = {.vlen_bits = 128}});
  const snap::Blob blob = snap::save_pool(a);
  par::HartPool b({.harts = 4, .shard_size = 64,
                   .machine = {.vlen_bits = 128}});
  EXPECT_THROW(snap::restore_pool(b, blob), SnapshotTrap);
}

TEST(SnapshotPoolMisc, NonQuiescentRescueRejectedBeforeAnyMutation) {
  // A live rescue machine is validated with the harts, before the apply
  // loop: a non-quiescent rescue must trap with every hart untouched,
  // whether the snapshot carries a rescue section or is about to reset it.
  par::HartPool pool({.harts = 2, .shard_size = 64,
                      .machine = {.vlen_bits = 128}});
  warm(pool.machine(0));
  const snap::Blob no_rescue = snap::save_pool(pool);
  rvv::Machine& rescue = pool.ensure_rescue_machine();
  const snap::Blob with_rescue = snap::save_pool(pool);

  // Drift hart 0 past both snapshots, then park a live value on the rescue
  // machine so it is no longer quiescent.
  warm(pool.machine(0));
  const sim::CountSnapshot live = pool.machine(0).counter().snapshot();
  {
    rvv::MachineScope scope(rescue);
    const auto held = rvv::vmv_v_x<u32>(1u, 4);
    EXPECT_THROW(snap::restore_pool(pool, with_rescue), SnapshotTrap);
    EXPECT_THROW(snap::restore_pool(pool, no_rescue), SnapshotTrap);
    // Both traps fired before any mutation: hart 0 still shows its
    // post-snapshot counts, not the snapshotted ones.
    expect_same_counts(pool.machine(0).counter().snapshot(), live,
                       "hart 0 after rejected restores");
  }

  // With the rescue quiescent again, both snapshots restore cleanly.
  snap::restore_pool(pool, with_rescue);
  snap::restore_pool(pool, no_rescue);
}

// --- serve cold start -------------------------------------------------------

TEST(SnapshotServe, ColdStartFromCheckpointFile) {
  const std::string path = ::testing::TempDir() + "snap_serve_cold.snap";
  serve::ScanService::Config cfg;
  cfg.harts = 2;
  cfg.machine.vlen_bits = 256;
  cfg.background = false;

  serve::Response first;
  sim::CountSnapshot warm_counts;
  {
    serve::ScanService svc(cfg);
    serve::Request req;
    req.kind = serve::Kind::kScan;
    req.tenant = 1;
    req.data = {1, 2, 3, 4, 5};
    first = svc.call(std::move(req));
    ASSERT_TRUE(first.ok());
    svc.stop();
    svc.checkpoint_to(path);
    warm_counts = svc.pool().merged_counts();
  }

  // Cold start from the file: the pool comes up with the checkpointed
  // ledger and serves identical results at identical cost.
  serve::ScanService::Config warm_cfg = cfg;
  warm_cfg.restore_snapshot = path;
  serve::ScanService svc(warm_cfg);
  expect_same_counts(svc.pool().merged_counts(), warm_counts,
                     "cold-started pool ledger");
  serve::Request req;
  req.kind = serve::Kind::kScan;
  req.tenant = 1;
  req.data = {1, 2, 3, 4, 5};
  const serve::Response resp = svc.call(std::move(req));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.data, first.data);
  EXPECT_EQ(resp.billed_total, first.billed_total);
  svc.stop();
  std::remove(path.c_str());
}

TEST(SnapshotServe, MismatchedRestoreFailsConstruction) {
  const std::string path = ::testing::TempDir() + "snap_serve_mismatch.snap";
  {
    serve::ScanService::Config cfg;
    cfg.harts = 2;
    cfg.machine.vlen_bits = 256;
    cfg.background = false;
    serve::ScanService svc(cfg);
    svc.stop();
    svc.checkpoint_to(path);
  }
  serve::ScanService::Config other;
  other.harts = 2;
  other.machine.vlen_bits = 512;  // VLEN differs from the checkpoint
  other.background = false;
  other.restore_snapshot = path;
  EXPECT_THROW(serve::ScanService svc(other), SnapshotTrap);
  std::remove(path.c_str());
}

TEST(SnapshotServe, CheckpointCadenceWritesBetweenWaves) {
  const std::string path = ::testing::TempDir() + "snap_serve_cadence.snap";
  serve::ScanService::Config cfg;
  cfg.harts = 2;
  cfg.machine.vlen_bits = 256;
  cfg.background = false;
  cfg.checkpoint_every_waves = 1;
  cfg.checkpoint_path = path;
  serve::ScanService svc(cfg);
  serve::Request req;
  req.kind = serve::Kind::kReduce;
  req.tenant = 1;
  req.data = {7, 8, 9};
  ASSERT_TRUE(svc.call(std::move(req)).ok());
  EXPECT_GE(svc.stats().checkpoints, 1u);
  EXPECT_EQ(svc.stats().checkpoint_failures, 0u);
  // The cadence checkpoint is a valid pool snapshot.
  const snap::Info info = snap::inspect(snap::read_file(path));
  EXPECT_EQ(info.sections.front().id, snap::kSectionPool);
  svc.stop();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rvvsvm
