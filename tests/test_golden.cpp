// Golden-count regression tests: exact dynamic-instruction totals for the
// benchmark cells, pinned so that any accidental change to an instruction
// schedule, the strip-mine bookkeeping, or the pressure model shows up as a
// test failure with the before/after delta — not as silently shifted tables.
// If a change is *intentional*, update these numbers together with
// EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "apps/radix_sort.hpp"
#include "bench/common.hpp"
#include "svm/baseline/qsort.hpp"
#include "svm/scan.hpp"
#include "svm/segmented.hpp"

namespace {

using namespace rvvsvm;
using T = std::uint32_t;

TEST(Golden, Table1RadixSortCells) {
  // Must match bench/table1_radix_sort (seed 7, VLEN=1024, LMUL=1).
  auto keys = bench::random_u32(10000, 7);
  EXPECT_EQ(bench::count_instructions(1024, [&] {
    apps::split_radix_sort<T>(std::span<T>(keys));
  }), 731488u);
}

TEST(Golden, Table1QsortCells) {
  auto keys = bench::random_u32(10000, 7);
  EXPECT_EQ(bench::count_instructions(1024, [&] {
    svm::baseline::qsort_u32(std::span<T>(keys));
  }), 2171801u);
}

TEST(Golden, Table2PAddCells) {
  auto data = bench::random_u32(1000000, 11);
  EXPECT_EQ(bench::count_instructions(1024, [&] {
    svm::p_add<T>(std::span<T>(data), 123u);
  }), 281251u);
}

TEST(Golden, Table3PlusScanCells) {
  auto data = bench::random_u32(1000000, 13);
  EXPECT_EQ(bench::count_instructions(1024, [&] {
    svm::plus_scan<T>(std::span<T>(data));
  }), 1125001u);
}

TEST(Golden, Table4SegPlusScanCells) {
  auto data = bench::random_u32(1000000, 17);
  const auto flags = bench::random_head_flags(1000000, 100, 18);
  EXPECT_EQ(bench::count_instructions(1024, [&] {
    svm::seg_plus_scan<T>(std::span<T>(data), std::span<const T>(flags));
  }), 2093751u);
}

TEST(Golden, Table5Lmul8Cells) {
  // The spill-model-dependent cell: any allocator policy change moves this.
  auto small = bench::random_u32(100, 17);
  const auto small_flags = bench::random_head_flags(100, 100, 18);
  EXPECT_EQ(bench::count_instructions(1024, [&] {
    svm::seg_plus_scan<T, 8>(std::span<T>(small), std::span<const T>(small_flags));
  }), 368u);
}

TEST(Golden, Table7Vlen128Cells) {
  auto data = bench::random_u32(10000, 17);
  const auto flags = bench::random_head_flags(10000, 100, 18);
  EXPECT_EQ(bench::count_instructions(128, [&] {
    svm::seg_plus_scan<T>(std::span<T>(data), std::span<const T>(flags));
  }), 92501u);
}

}  // namespace
