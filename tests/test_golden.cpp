// Golden-count regression tests: exact dynamic-instruction totals for a
// handful of benchmark cells, pinned so that any accidental change to an
// instruction schedule, the strip-mine bookkeeping, or the pressure model
// shows up as a test failure with the before/after delta — not as silently
// shifted tables.  The full-table version of this check (every cell of
// every EXPERIMENTS.md table against committed JSON) lives in
// test_paper_tables.cpp; these spot checks stay because they fail fast and
// name the kernel directly.  If a change is *intentional*, refresh with
// tools/regen_tables and update these numbers together with EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "apps/radix_sort.hpp"
#include "svm/baseline/qsort.hpp"
#include "svm/scan.hpp"
#include "svm/segmented.hpp"
#include "tables/measure.hpp"
#include "tables/workloads.hpp"

namespace {

using namespace rvvsvm;
using tables::count_instructions;
namespace workloads = tables::workloads;
using T = std::uint32_t;

TEST(Golden, Table1RadixSortCells) {
  // Must match tables::table1_radix_sort (VLEN=1024, LMUL=1).
  auto keys = workloads::sort_keys(10000);
  EXPECT_EQ(count_instructions(1024, [&] {
    apps::split_radix_sort<T>(std::span<T>(keys));
  }), 731488u);
}

TEST(Golden, Table1QsortCells) {
  auto keys = workloads::sort_keys(10000);
  EXPECT_EQ(count_instructions(1024, [&] {
    svm::baseline::qsort_u32(std::span<T>(keys));
  }), 2171801u);
}

TEST(Golden, Table2PAddCells) {
  auto data = workloads::padd_input(1000000);
  EXPECT_EQ(count_instructions(1024, [&] {
    svm::p_add<T, 1>(std::span<T>(data), 123u);
  }), 281251u);
}

TEST(Golden, Table3PlusScanCells) {
  auto data = workloads::scan_input(1000000);
  EXPECT_EQ(count_instructions(1024, [&] {
    svm::plus_scan<T, 1>(std::span<T>(data));
  }), 1125001u);
}

TEST(Golden, Table4SegPlusScanCells) {
  auto data = workloads::seg_input(1000000);
  const auto flags = workloads::seg_head_flags(1000000);
  EXPECT_EQ(count_instructions(1024, [&] {
    svm::seg_plus_scan<T, 1>(std::span<T>(data), std::span<const T>(flags));
  }), 2093751u);
}

TEST(Golden, Table5Lmul8Cells) {
  // The spill-model-dependent cell: any allocator policy change moves this.
  auto small = workloads::seg_input(100);
  const auto small_flags = workloads::seg_head_flags(100);
  EXPECT_EQ(count_instructions(1024, [&] {
    svm::seg_plus_scan<T, 8>(std::span<T>(small), std::span<const T>(small_flags));
  }), 368u);
}

TEST(Golden, Table7Vlen128Cells) {
  auto data = workloads::seg_input(10000);
  const auto flags = workloads::seg_head_flags(10000);
  EXPECT_EQ(count_instructions(128, [&] {
    svm::seg_plus_scan<T, 1>(std::span<T>(data), std::span<const T>(flags));
  }), 92501u);
}

}  // namespace
