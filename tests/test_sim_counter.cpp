// Unit tests for the instruction accounting substrate (sim/inst_counter,
// sim/scalar_model): the foundation every measured number rests on.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/inst_counter.hpp"
#include "sim/scalar_model.hpp"

namespace {

using namespace rvvsvm::sim;

TEST(InstCounter, StartsAtZero) {
  InstCounter c;
  EXPECT_EQ(c.total(), 0u);
  for (std::size_t i = 0; i < kNumInstClasses; ++i) {
    EXPECT_EQ(c.count(static_cast<InstClass>(i)), 0u);
  }
}

TEST(InstCounter, AddAccumulatesPerClass) {
  InstCounter c;
  c.add(InstClass::kVectorArith);
  c.add(InstClass::kVectorArith, 4);
  c.add(InstClass::kScalarAlu, 2);
  EXPECT_EQ(c.count(InstClass::kVectorArith), 5u);
  EXPECT_EQ(c.count(InstClass::kScalarAlu), 2u);
  EXPECT_EQ(c.total(), 7u);
}

TEST(InstCounter, ResetZeroesEverything) {
  InstCounter c;
  c.add(InstClass::kVectorLoad, 10);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(InstCounter, SnapshotIsImmutableCopy) {
  InstCounter c;
  c.add(InstClass::kVectorStore, 3);
  const CountSnapshot s = c.snapshot();
  c.add(InstClass::kVectorStore, 7);
  EXPECT_EQ(s.count(InstClass::kVectorStore), 3u);
  EXPECT_EQ(c.count(InstClass::kVectorStore), 10u);
}

TEST(InstCounter, SnapshotDeltaBracketsKernel) {
  InstCounter c;
  c.add(InstClass::kVectorArith, 5);
  const auto before = c.snapshot();
  c.add(InstClass::kVectorArith, 11);
  c.add(InstClass::kScalarBranch, 2);
  const auto delta = c.snapshot() - before;
  EXPECT_EQ(delta.count(InstClass::kVectorArith), 11u);
  EXPECT_EQ(delta.count(InstClass::kScalarBranch), 2u);
  EXPECT_EQ(delta.total(), 13u);
}

TEST(CountSnapshot, VectorScalarPartition) {
  InstCounter c;
  c.add(InstClass::kVectorConfig, 1);
  c.add(InstClass::kVectorLoad, 2);
  c.add(InstClass::kVectorStore, 3);
  c.add(InstClass::kVectorArith, 4);
  c.add(InstClass::kVectorMask, 5);
  c.add(InstClass::kVectorPermute, 6);
  c.add(InstClass::kVectorReduce, 7);
  c.add(InstClass::kVectorMove, 8);
  c.add(InstClass::kVectorSpill, 9);
  c.add(InstClass::kVectorReload, 10);
  c.add(InstClass::kScalarAlu, 11);
  c.add(InstClass::kScalarLoad, 12);
  c.add(InstClass::kScalarStore, 13);
  c.add(InstClass::kScalarBranch, 14);
  c.add(InstClass::kScalarCall, 15);
  const auto s = c.snapshot();
  EXPECT_EQ(s.vector_total(), 1u + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 10);
  EXPECT_EQ(s.scalar_total(), 11u + 12 + 13 + 14 + 15);
  EXPECT_EQ(s.spill_total(), 19u);
  EXPECT_EQ(s.total(), s.vector_total() + s.scalar_total());
}

TEST(CountSnapshot, StreamOutputListsNonZeroClasses) {
  InstCounter c;
  c.add(InstClass::kVectorArith, 3);
  std::ostringstream os;
  os << c.snapshot();
  EXPECT_NE(os.str().find("total=3"), std::string::npos);
  EXPECT_NE(os.str().find("v.arith=3"), std::string::npos);
  EXPECT_EQ(os.str().find("s.alu"), std::string::npos);
}

TEST(InstClass, NamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kNumInstClasses; ++i) {
    const auto name = to_string(static_cast<InstClass>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "invalid");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
}

TEST(InstClass, IsVectorPartition) {
  EXPECT_TRUE(is_vector(InstClass::kVectorConfig));
  EXPECT_TRUE(is_vector(InstClass::kVectorReload));
  EXPECT_FALSE(is_vector(InstClass::kScalarAlu));
  EXPECT_FALSE(is_vector(InstClass::kScalarCall));
}

TEST(ScalarCost, Algebra) {
  constexpr ScalarCost a{.alu = 1, .load = 2, .store = 3, .branch = 4, .call = 5};
  constexpr ScalarCost b{.alu = 10, .load = 20, .store = 30, .branch = 40, .call = 50};
  constexpr auto sum = a + b;
  EXPECT_EQ(sum.alu, 11u);
  EXPECT_EQ(sum.call, 55u);
  constexpr auto scaled = a * 3;
  EXPECT_EQ(scaled.store, 9u);
  EXPECT_EQ(a.total(), 15u);
  EXPECT_EQ(scaled.total(), 45u);
}

TEST(ScalarCost, StripmineScheduleMatchesListing2) {
  // The paper's Listing 2 loop body: slli + per-pointer add + sub + move,
  // closed by bnez — 5 scalar instructions for one pointer.
  constexpr auto one_ptr = rvvsvm::sim::stripmine_iteration(1);
  EXPECT_EQ(one_ptr.total(), 5u);
  EXPECT_EQ(one_ptr.branch, 1u);
  constexpr auto two_ptr = rvvsvm::sim::stripmine_iteration(2);
  EXPECT_EQ(two_ptr.total(), 6u);
}

TEST(ScalarRecorder, ChargesIntoCounter) {
  InstCounter c;
  ScalarRecorder r(c);
  r.alu(3);
  r.load();
  r.store(2);
  r.branch();
  r.call(4);
  EXPECT_EQ(c.count(InstClass::kScalarAlu), 3u);
  EXPECT_EQ(c.count(InstClass::kScalarLoad), 1u);
  EXPECT_EQ(c.count(InstClass::kScalarStore), 2u);
  EXPECT_EQ(c.count(InstClass::kScalarBranch), 1u);
  EXPECT_EQ(c.count(InstClass::kScalarCall), 4u);
}

TEST(ScalarRecorder, ChargeScheduleTimesN) {
  InstCounter c;
  ScalarRecorder r(c);
  r.charge({.alu = 2, .load = 1, .branch = 1}, 100);
  EXPECT_EQ(c.count(InstClass::kScalarAlu), 200u);
  EXPECT_EQ(c.count(InstClass::kScalarLoad), 100u);
  EXPECT_EQ(c.count(InstClass::kScalarBranch), 100u);
  EXPECT_EQ(c.total(), 400u);
}

}  // namespace
