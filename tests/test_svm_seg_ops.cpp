// Tests for the higher-order segmented operations: the generic exclusive
// segmented scan (any operator), segmented split (split-and-segment), and
// segmented reduce.
#include <gtest/gtest.h>

#include "svm/scan.hpp"
#include "svm/seg_ops.hpp"
#include "test_util.hpp"

namespace {

using namespace rvvsvm;
using test::random_flags;
using test::random_vector;
using T = std::uint32_t;

class SegOpsTest : public ::testing::Test {
 protected:
  rvv::Machine machine{rvv::Machine::Config{.vlen_bits = 256}};
  rvv::MachineScope scope{machine};
};

template <class Op>
std::vector<T> ref_seg_exclusive(const std::vector<T>& in, const std::vector<T>& heads) {
  std::vector<T> out(in.size());
  T acc = Op::template identity<T>();
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (i == 0 || heads[i] != 0) acc = Op::template identity<T>();
    out[i] = acc;
    acc = Op::template scalar<T>(acc, in[i]);
  }
  return out;
}

TEST_F(SegOpsTest, ExclusiveSegScanPlusAllShapes) {
  const std::size_t vl = machine.vlmax<T>();
  for (const std::size_t n : test::boundary_sizes(vl)) {
    for (const double density : {0.0, 0.15, 1.0}) {
      auto flags = random_flags<T>(n, static_cast<std::uint32_t>(n) + 40, density);
      auto data = random_vector<T>(n, static_cast<std::uint32_t>(n) + 41);
      const auto input = data;
      svm::seg_scan_exclusive<svm::PlusOp, T>(std::span<T>(data),
                                              std::span<const T>(flags));
      ASSERT_EQ(data, ref_seg_exclusive<svm::PlusOp>(input, flags))
          << "n=" << n << " d=" << density;
    }
  }
}

TEST_F(SegOpsTest, ExclusiveSegScanWorksForNonInvertibleOps) {
  // max has no inverse: this exercises the genuinely general slide-based
  // construction, not subtraction.
  const auto data_in = random_vector<T>(500, 42);
  const auto flags = random_flags<T>(500, 43, 0.1);
  auto mx = data_in;
  svm::seg_scan_exclusive<svm::MaxOp, T>(std::span<T>(mx), std::span<const T>(flags));
  EXPECT_EQ(mx, ref_seg_exclusive<svm::MaxOp>(data_in, flags));

  auto mn = data_in;
  svm::seg_scan_exclusive<svm::MinOp, T>(std::span<T>(mn), std::span<const T>(flags));
  EXPECT_EQ(mn, ref_seg_exclusive<svm::MinOp>(data_in, flags));

  auto o = data_in;
  svm::seg_scan_exclusive<svm::OrOp, T>(std::span<T>(o), std::span<const T>(flags));
  EXPECT_EQ(o, ref_seg_exclusive<svm::OrOp>(data_in, flags));
}

TEST_F(SegOpsTest, ExclusiveCarryCrossesBlocksWithinSegment) {
  const std::size_t vl = machine.vlmax<T>();
  const std::size_t n = 3 * vl;
  const auto input = random_vector<T>(n, 44);
  std::vector<T> flags(n, 0);  // one giant segment
  auto ex = input;
  svm::seg_scan_exclusive<svm::PlusOp, T>(std::span<T>(ex), std::span<const T>(flags));
  // Must equal the unsegmented exclusive scan.
  auto ref = input;
  svm::plus_scan_exclusive<T>(std::span<T>(ref));
  EXPECT_EQ(ex, ref);
}

TEST_F(SegOpsTest, SegSplitPartitionsEachSegmentStably) {
  const std::size_t n = 400;
  const auto src = random_vector<T>(n, 45, 1000);
  const auto flags = random_flags<T>(n, 46, 0.5);
  auto heads = random_flags<T>(n, 47, 0.05);
  std::vector<T> dst(n);
  svm::seg_split<T>(std::span<const T>(src), std::span<T>(dst),
                    std::span<const T>(flags), std::span<const T>(heads));
  // Reference: stable partition per segment.
  std::vector<T> expect;
  std::size_t s = 0;
  while (s < n) {
    std::size_t e = s + 1;
    while (e < n && heads[e] == 0) ++e;
    for (std::size_t i = s; i < e; ++i) {
      if (flags[i] == 0) expect.push_back(src[i]);
    }
    for (std::size_t i = s; i < e; ++i) {
      if (flags[i] != 0) expect.push_back(src[i]);
    }
    s = e;
  }
  EXPECT_EQ(dst, expect);
}

TEST_F(SegOpsTest, SegSplitSingleSegmentMatchesPlainSplit) {
  const auto src = random_vector<T>(300, 48, 100);
  const auto flags = random_flags<T>(300, 49, 0.4);
  std::vector<T> heads(300, 0);
  heads[0] = 1;
  std::vector<T> seg_dst(300), plain_dst(300);
  svm::seg_split<T>(std::span<const T>(src), std::span<T>(seg_dst),
                    std::span<const T>(flags), std::span<const T>(heads));
  static_cast<void>(svm::split<T>(std::span<const T>(src), std::span<T>(plain_dst),
                                  std::span<const T>(flags)));
  EXPECT_EQ(seg_dst, plain_dst);
}

TEST_F(SegOpsTest, SegSplitEmitsNewHeads) {
  //            seg A          | seg B
  const std::vector<T> src  {5, 6, 7, 8,   9, 10};
  const std::vector<T> flags{1, 0, 1, 0,   0, 0};   // A: two 1s; B: none
  const std::vector<T> heads{1, 0, 0, 0,   1, 0};
  std::vector<T> dst(6), new_heads(6);
  svm::seg_split<T>(std::span<const T>(src), std::span<T>(dst),
                    std::span<const T>(flags), std::span<const T>(heads),
                    std::span<T>(new_heads));
  EXPECT_EQ(dst, (std::vector<T>{6, 8, 5, 7, 9, 10}));
  // New heads: A's old head, A's flag-1 group start (index 2), B's head.
  EXPECT_EQ(new_heads, (std::vector<T>{1, 0, 1, 0, 1, 0}));
}

TEST_F(SegOpsTest, SegSplitNewHeadsAllOnesSegmentHarmless) {
  const std::vector<T> src  {5, 6, 7};
  const std::vector<T> flags{1, 1, 1};
  const std::vector<T> heads{1, 0, 0};
  std::vector<T> dst(3), new_heads(3);
  svm::seg_split<T>(std::span<const T>(src), std::span<T>(dst),
                    std::span<const T>(flags), std::span<const T>(heads),
                    std::span<T>(new_heads));
  EXPECT_EQ(dst, src);
  EXPECT_EQ(new_heads, (std::vector<T>{1, 0, 0}));  // group boundary == head
}

TEST_F(SegOpsTest, SegReduceTotalsInSegmentOrder) {
  const std::vector<T> data {1, 2, 3,  10, 20,  5};
  const std::vector<T> heads{1, 0, 0,  1, 0,    1};
  std::vector<T> out(6, 99);
  const std::size_t segs = svm::seg_reduce<svm::PlusOp, T>(
      std::span<const T>(data), std::span<const T>(heads), std::span<T>(out));
  EXPECT_EQ(segs, 3u);
  EXPECT_EQ(std::vector<T>(out.begin(), out.begin() + 3), (std::vector<T>{6, 30, 5}));
}

TEST_F(SegOpsTest, SegReduceMaxAcrossBlocks) {
  const std::size_t vl = machine.vlmax<T>();
  const std::size_t n = 4 * vl + 3;
  const auto data = random_vector<T>(n, 50);
  auto heads = random_flags<T>(n, 51, 0.03);
  std::vector<T> out(n);
  const std::size_t segs = svm::seg_reduce<svm::MaxOp, T>(
      std::span<const T>(data), std::span<const T>(heads), std::span<T>(out));
  // Reference.
  std::vector<T> expect;
  T cur = 0;
  bool open = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0 || heads[i] != 0) {
      if (open) expect.push_back(cur);
      cur = data[i];
      open = true;
    } else {
      cur = std::max(cur, data[i]);
    }
  }
  if (open) expect.push_back(cur);
  EXPECT_EQ(segs, expect.size());
  EXPECT_EQ(std::vector<T>(out.begin(), out.begin() + static_cast<long>(segs)), expect);
}

TEST_F(SegOpsTest, SegReduceImplicitHeadAtZero) {
  const std::vector<T> data {4, 5,  6};
  const std::vector<T> heads{0, 0,  1};  // element 0 starts a segment anyway
  std::vector<T> out(3);
  const std::size_t segs = svm::seg_reduce<svm::PlusOp, T>(
      std::span<const T>(data), std::span<const T>(heads), std::span<T>(out));
  EXPECT_EQ(segs, 2u);
  EXPECT_EQ(out[0], 9u);
  EXPECT_EQ(out[1], 6u);
}

TEST_F(SegOpsTest, EmptyInputs) {
  std::vector<T> empty;
  EXPECT_EQ((svm::seg_reduce<svm::PlusOp, T>(std::span<const T>(empty),
                                             std::span<const T>(empty),
                                             std::span<T>(empty))),
            0u);
  svm::seg_split<T>(std::span<const T>(empty), std::span<T>(empty),
                    std::span<const T>(empty), std::span<const T>(empty));
}

}  // namespace
