// Unit tests for the mask instructions: compares, mask-register logicals,
// and the mask utility group (vcpop/vfirst/vmsbf/vmsif/vmsof/viota/vid)
// whose edge cases the paper's enumerate and segmented-scan kernels rely on.
#include <gtest/gtest.h>

#include "rvv/rvv.hpp"

namespace {

using namespace rvvsvm;
using T = std::uint32_t;

class MaskTest : public ::testing::Test {
 protected:
  rvv::Machine machine{rvv::Machine::Config{.vlen_bits = 256}};
  rvv::MachineScope scope{machine};

  rvv::vreg<T> load(const std::vector<T>& v) {
    return rvv::vle<T>(std::span<const T>(v), v.size());
  }
  std::vector<bool> bits(const rvv::vmask& m, std::size_t vl) {
    std::vector<bool> out(vl);
    for (std::size_t i = 0; i < vl; ++i) out[i] = m[i];
    return out;
  }
};

TEST_F(MaskTest, CompareFamilyVectorVector) {
  const auto a = load({1, 5, 3, 7});
  const auto b = load({1, 3, 5, 7});
  EXPECT_EQ(bits(rvv::vmseq(a, b, 4), 4), (std::vector<bool>{1, 0, 0, 1}));
  EXPECT_EQ(bits(rvv::vmsne(a, b, 4), 4), (std::vector<bool>{0, 1, 1, 0}));
  EXPECT_EQ(bits(rvv::vmslt(a, b, 4), 4), (std::vector<bool>{0, 0, 1, 0}));
  EXPECT_EQ(bits(rvv::vmsle(a, b, 4), 4), (std::vector<bool>{1, 0, 1, 1}));
  EXPECT_EQ(bits(rvv::vmsgt(a, b, 4), 4), (std::vector<bool>{0, 1, 0, 0}));
  EXPECT_EQ(bits(rvv::vmsge(a, b, 4), 4), (std::vector<bool>{1, 1, 0, 1}));
}

TEST_F(MaskTest, CompareFamilyVectorScalar) {
  const auto a = load({1, 5, 3, 7});
  EXPECT_EQ(bits(rvv::vmseq(a, 3u, 4), 4), (std::vector<bool>{0, 0, 1, 0}));
  EXPECT_EQ(bits(rvv::vmsgt(a, 3u, 4), 4), (std::vector<bool>{0, 1, 0, 1}));
  EXPECT_EQ(bits(rvv::vmslt(a, 3u, 4), 4), (std::vector<bool>{1, 0, 0, 0}));
}

TEST_F(MaskTest, SignedCompareUsesSignedOrder) {
  const std::vector<std::int32_t> a{-5, 5};
  const auto va = rvv::vle<std::int32_t>(std::span<const std::int32_t>(a), 2);
  const auto m = rvv::vmslt(va, 0, 2);
  EXPECT_TRUE(m[0]);
  EXPECT_FALSE(m[1]);
}

TEST_F(MaskTest, MaskLogicals) {
  const auto a = load({1, 1, 0, 0});
  const auto b = load({1, 0, 1, 0});
  const auto ma = rvv::vmsne(a, 0u, 4);
  const auto mb = rvv::vmsne(b, 0u, 4);
  EXPECT_EQ(bits(rvv::vmand(ma, mb, 4), 4), (std::vector<bool>{1, 0, 0, 0}));
  EXPECT_EQ(bits(rvv::vmor(ma, mb, 4), 4), (std::vector<bool>{1, 1, 1, 0}));
  EXPECT_EQ(bits(rvv::vmxor(ma, mb, 4), 4), (std::vector<bool>{0, 1, 1, 0}));
  EXPECT_EQ(bits(rvv::vmnand(ma, mb, 4), 4), (std::vector<bool>{0, 1, 1, 1}));
  EXPECT_EQ(bits(rvv::vmnor(ma, mb, 4), 4), (std::vector<bool>{0, 0, 0, 1}));
  EXPECT_EQ(bits(rvv::vmxnor(ma, mb, 4), 4), (std::vector<bool>{1, 0, 0, 1}));
  EXPECT_EQ(bits(rvv::vmandn(ma, mb, 4), 4), (std::vector<bool>{0, 1, 0, 0}));
  EXPECT_EQ(bits(rvv::vmorn(ma, mb, 4), 4), (std::vector<bool>{1, 1, 0, 1}));
  EXPECT_EQ(bits(rvv::vmnot(ma, 4), 4), (std::vector<bool>{0, 0, 1, 1}));
}

TEST_F(MaskTest, VmclrVmset) {
  EXPECT_EQ(bits(rvv::vmclr(4), 4), (std::vector<bool>{0, 0, 0, 0}));
  EXPECT_EQ(bits(rvv::vmset(4), 4), (std::vector<bool>{1, 1, 1, 1}));
}

TEST_F(MaskTest, VcpopCountsActiveRange) {
  const auto m = rvv::vmsne(load({1, 0, 1, 1}), 0u, 4);
  EXPECT_EQ(rvv::vcpop(m, 4), 3u);
  EXPECT_EQ(rvv::vcpop(m, 2), 1u);
  EXPECT_EQ(rvv::vcpop(m, 0), 0u);
}

TEST_F(MaskTest, VfirstFindsFirstOrMinusOne) {
  const auto m = rvv::vmsne(load({0, 0, 1, 1}), 0u, 4);
  EXPECT_EQ(rvv::vfirst(m, 4), 2);
  EXPECT_EQ(rvv::vfirst(m, 2), -1);
  const auto none = rvv::vmsne(load({0, 0, 0, 0}), 0u, 4);
  EXPECT_EQ(rvv::vfirst(none, 4), -1);
}

TEST_F(MaskTest, SetBeforeFirstVariants) {
  const auto m = rvv::vmsne(load({0, 0, 1, 0, 1, 0}), 0u, 6);
  EXPECT_EQ(bits(rvv::vmsbf(m, 6), 6), (std::vector<bool>{1, 1, 0, 0, 0, 0}));
  EXPECT_EQ(bits(rvv::vmsif(m, 6), 6), (std::vector<bool>{1, 1, 1, 0, 0, 0}));
  EXPECT_EQ(bits(rvv::vmsof(m, 6), 6), (std::vector<bool>{0, 0, 1, 0, 0, 0}));
}

TEST_F(MaskTest, SetBeforeFirstNoBitSet) {
  const auto m = rvv::vmsne(load({0, 0, 0}), 0u, 3);
  EXPECT_EQ(bits(rvv::vmsbf(m, 3), 3), (std::vector<bool>{1, 1, 1}));
  EXPECT_EQ(bits(rvv::vmsif(m, 3), 3), (std::vector<bool>{1, 1, 1}));
  EXPECT_EQ(bits(rvv::vmsof(m, 3), 3), (std::vector<bool>{0, 0, 0}));
}

TEST_F(MaskTest, SetBeforeFirstBitAtZero) {
  const auto m = rvv::vmsne(load({1, 0, 1}), 0u, 3);
  EXPECT_EQ(bits(rvv::vmsbf(m, 3), 3), (std::vector<bool>{0, 0, 0}));
  EXPECT_EQ(bits(rvv::vmsif(m, 3), 3), (std::vector<bool>{1, 0, 0}));
  EXPECT_EQ(bits(rvv::vmsof(m, 3), 3), (std::vector<bool>{1, 0, 0}));
}

TEST_F(MaskTest, ViotaIsExclusivePrefixPopcount) {
  const auto m = rvv::vmsne(load({1, 0, 1, 1, 0, 1}), 0u, 6);
  const auto io = rvv::viota<T>(m, 6);
  const std::vector<T> expect{0, 1, 1, 2, 3, 3};
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(io[i], expect[i]) << i;
}

TEST_F(MaskTest, ViotaAllClearIsZeros) {
  const auto m = rvv::vmsne(load({0, 0, 0}), 0u, 3);
  const auto io = rvv::viota<T>(m, 3);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(io[i], 0u);
}

TEST_F(MaskTest, VidProducesIndices) {
  const auto v = rvv::vid<T>(5);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
}

TEST_F(MaskTest, MaskBitsBeyondVlArePoisonSet) {
  const auto m = rvv::vmseq(load({0, 0}), 1u, 2);  // both false
  EXPECT_FALSE(m[0]);
  // Bits past vl follow the mask-agnostic all-ones pattern.
  EXPECT_TRUE(m[2]);
}

TEST_F(MaskTest, InstructionClassesCharged) {
  const auto before = machine.counter().snapshot();
  const auto a = load({1, 2, 3, 4});
  const auto m = rvv::vmseq(a, 2u, 4);
  static_cast<void>(rvv::vcpop(m, 4));
  static_cast<void>(rvv::viota<T>(m, 4));
  const auto delta = machine.counter().snapshot() - before;
  EXPECT_EQ(delta.count(sim::InstClass::kVectorLoad), 1u);
  EXPECT_EQ(delta.count(sim::InstClass::kVectorMask), 3u);
}

TEST_F(MaskTest, UndefinedMaskThrows) {
  rvv::vmask u;
  EXPECT_FALSE(u.defined());
  EXPECT_THROW(static_cast<void>(u[0]), std::logic_error);
  EXPECT_THROW(static_cast<void>(u.machine()), std::logic_error);
}

}  // namespace
