// Tests for scan-based quickselect and the scalar radix-sort baseline.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/quickselect.hpp"
#include "apps/radix_sort.hpp"
#include "svm/baseline/baseline.hpp"
#include "test_util.hpp"

namespace {

using namespace rvvsvm;
using test::random_vector;
using T = std::uint32_t;

class QuickselectTest : public ::testing::Test {
 protected:
  rvv::Machine machine{rvv::Machine::Config{.vlen_bits = 256}};
  rvv::MachineScope scope{machine};

  void check(std::vector<T> v, std::size_t k) {
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    auto scratch = v;
    ASSERT_EQ((apps::quickselect<T>(std::span<T>(scratch), k)), sorted[k])
        << "k=" << k << " n=" << v.size();
  }
};

TEST_F(QuickselectTest, AllRanksOfASmallInput) {
  const auto v = random_vector<T>(60, 110, 50);
  for (std::size_t k = 0; k < v.size(); ++k) check(v, k);
}

TEST_F(QuickselectTest, MedianMinMaxOfLargeInputs) {
  for (const std::size_t n : {std::size_t{257}, std::size_t{1000}, std::size_t{4097}}) {
    const auto v = random_vector<T>(n, static_cast<std::uint32_t>(n) + 111);
    check(v, 0);
    check(v, n / 2);
    check(v, n - 1);
  }
}

TEST_F(QuickselectTest, DegenerateDistributions) {
  check(std::vector<T>(100, 7u), 50);   // all equal
  std::vector<T> sorted(200);
  std::iota(sorted.begin(), sorted.end(), 0u);
  check(sorted, 137);
  std::vector<T> rev(sorted.rbegin(), sorted.rend());
  check(rev, 137);
  check({42u}, 0);  // single element
}

TEST_F(QuickselectTest, RankOutOfRangeThrows) {
  std::vector<T> v{1, 2, 3};
  EXPECT_THROW(static_cast<void>(apps::quickselect<T>(std::span<T>(v), 3)),
               std::out_of_range);
}

TEST_F(QuickselectTest, CheaperThanFullSort) {
  const auto v = random_vector<T>(20000, 112);
  rvv::Machine m2(rvv::Machine::Config{.vlen_bits = 1024});
  std::uint64_t select_cost = 0, sort_cost = 0;
  {
    rvv::MachineScope s2(m2);
    auto scratch = v;
    static_cast<void>(apps::quickselect<T>(std::span<T>(scratch), 10000));
    select_cost = m2.counter().total();
  }
  rvv::Machine m3(rvv::Machine::Config{.vlen_bits = 1024});
  {
    rvv::MachineScope s3(m3);
    auto scratch = v;
    apps::split_radix_sort<T>(std::span<T>(scratch));
    sort_cost = m3.counter().total();
  }
  EXPECT_LT(select_cost, sort_cost / 2);  // O(n) vs 32 full passes
}

TEST_F(QuickselectTest, WorksAtHigherLmul) {
  const auto v = random_vector<T>(999, 113);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  auto scratch = v;
  EXPECT_EQ((apps::quickselect<T, 4>(std::span<T>(scratch), 499)), sorted[499]);
}

TEST(ScalarRadixBaseline, SortsAndCharges) {
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 1024});
  rvv::MachineScope scope(machine);
  auto v = random_vector<T>(5000, 114);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  const auto before = machine.counter().snapshot();
  svm::baseline::radix_sort<T>(std::span<T>(v));
  const auto count = (machine.counter().snapshot() - before).total();
  EXPECT_EQ(v, expect);
  // 4 byte passes * (8 count + 10 scatter)/element + histogram prefix work.
  EXPECT_GT(count, 4u * 18 * 5000);
  EXPECT_LT(count, 4u * 18 * 5000 + 4 * 256 * 6 + 5000);
}

TEST(ScalarRadixBaseline, NarrowKeysFewerPasses) {
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 1024});
  rvv::MachineScope scope(machine);
  auto v = random_vector<std::uint16_t>(3000, 115);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  svm::baseline::radix_sort<std::uint16_t>(std::span<std::uint16_t>(v));
  EXPECT_EQ(v, expect);
}

}  // namespace
