// Tests for the histogram and run-length-encoding applications, plus the
// width-conversion primitives they depend on (p_convert / vext / vnsrl).
#include <gtest/gtest.h>

#include <map>

#include "apps/histogram.hpp"
#include "apps/rle.hpp"
#include "test_util.hpp"

namespace {

using namespace rvvsvm;
using test::random_vector;
using T = std::uint32_t;

class HistRleTest : public ::testing::Test {
 protected:
  rvv::Machine machine{rvv::Machine::Config{.vlen_bits = 256}};
  rvv::MachineScope scope{machine};
};

TEST_F(HistRleTest, HistogramMatchesMapCount) {
  const std::size_t bins = 64;
  const auto keys = random_vector<T>(5000, 70, bins);
  std::vector<T> hist(bins);
  apps::histogram<T>(std::span<const T>(keys), std::span<T>(hist));
  std::map<T, T> expect;
  for (const T k : keys) ++expect[k];
  for (std::size_t b = 0; b < bins; ++b) {
    const auto it = expect.find(static_cast<T>(b));
    ASSERT_EQ(hist[b], it == expect.end() ? 0u : it->second) << b;
  }
}

TEST_F(HistRleTest, HistogramCountsSumToN) {
  const auto keys = random_vector<T>(977, 71, 10);
  std::vector<T> hist(10);
  apps::histogram<T>(std::span<const T>(keys), std::span<T>(hist));
  T sum = 0;
  for (const T c : hist) sum += c;
  EXPECT_EQ(sum, 977u);
}

TEST_F(HistRleTest, HistogramSingleBinAndEmpty) {
  const std::vector<T> keys(100, 0);
  std::vector<T> hist(1, 99);
  apps::histogram<T>(std::span<const T>(keys), std::span<T>(hist));
  EXPECT_EQ(hist[0], 100u);
  std::vector<T> hist2(4, 99);
  apps::histogram<T>(std::span<const T>(), std::span<T>(hist2));
  EXPECT_EQ(hist2, (std::vector<T>{0, 0, 0, 0}));
}

TEST_F(HistRleTest, HistogramNonPowerOfTwoBins) {
  const auto keys = random_vector<T>(3000, 72, 100);
  std::vector<T> hist(100);
  apps::histogram<T>(std::span<const T>(keys), std::span<T>(hist));
  std::vector<T> expect(100, 0);
  for (const T k : keys) ++expect[k];
  EXPECT_EQ(hist, expect);
}

std::vector<T> ref_decode(const apps::RunLength<T>& rl) {
  std::vector<T> out;
  for (std::size_t r = 0; r < rl.runs(); ++r) {
    out.insert(out.end(), rl.lengths[r], rl.values[r]);
  }
  return out;
}

TEST_F(HistRleTest, RleRoundTrip) {
  // Runs of random lengths.
  std::mt19937 rng(73);
  std::vector<T> data;
  for (int r = 0; r < 60; ++r) {
    const T v = static_cast<T>(rng() % 10);
    const std::size_t len = 1 + static_cast<std::size_t>(rng() % 20);
    data.insert(data.end(), len, v);
  }
  const auto rl = apps::rle_encode<T>(std::span<const T>(data));
  EXPECT_EQ(rl.decoded_size(), data.size());
  std::vector<T> decoded(data.size());
  apps::rle_decode<T>(rl, std::span<T>(decoded));
  EXPECT_EQ(decoded, data);
}

TEST_F(HistRleTest, RleEncodeMergesAdjacentEqualRuns) {
  const std::vector<T> data{7, 7, 7, 3, 3, 7};
  const auto rl = apps::rle_encode<T>(std::span<const T>(data));
  EXPECT_EQ(rl.values, (std::vector<T>{7, 3, 7}));
  EXPECT_EQ(rl.lengths, (std::vector<T>{3, 2, 1}));
}

TEST_F(HistRleTest, RleAllDistinctAndAllEqual) {
  const std::vector<T> distinct{1, 2, 3, 4};
  const auto rl1 = apps::rle_encode<T>(std::span<const T>(distinct));
  EXPECT_EQ(rl1.values, distinct);
  EXPECT_EQ(rl1.lengths, (std::vector<T>{1, 1, 1, 1}));

  const std::vector<T> equal(37, 9);
  const auto rl2 = apps::rle_encode<T>(std::span<const T>(equal));
  EXPECT_EQ(rl2.values, (std::vector<T>{9}));
  EXPECT_EQ(rl2.lengths, (std::vector<T>{37}));
  EXPECT_EQ(ref_decode(rl2), equal);
}

TEST_F(HistRleTest, RleEmpty) {
  const auto rl = apps::rle_encode<T>(std::span<const T>());
  EXPECT_EQ(rl.runs(), 0u);
  std::vector<T> out;
  apps::rle_decode<T>(rl, std::span<T>(out));
}

TEST_F(HistRleTest, RleRunsSpanningBlocks) {
  const std::size_t vl = machine.vlmax<T>();
  std::vector<T> data(vl * 3, 5);
  data.insert(data.end(), vl * 2, 6);
  const auto rl = apps::rle_encode<T>(std::span<const T>(data));
  EXPECT_EQ(rl.values, (std::vector<T>{5, 6}));
  EXPECT_EQ(rl.lengths[0], vl * 3);
  std::vector<T> decoded(data.size());
  apps::rle_decode<T>(rl, std::span<T>(decoded));
  EXPECT_EQ(decoded, data);
}

// --- width conversions -------------------------------------------------------

TEST_F(HistRleTest, PConvertWidensAndNarrows) {
  const auto narrow = random_vector<std::uint8_t>(300, 74);
  std::vector<std::uint32_t> wide(300);
  svm::p_convert<std::uint8_t, std::uint32_t>(std::span<const std::uint8_t>(narrow),
                                              std::span<std::uint32_t>(wide));
  for (std::size_t i = 0; i < 300; ++i) ASSERT_EQ(wide[i], narrow[i]) << i;
  std::vector<std::uint8_t> back(300);
  svm::p_convert<std::uint32_t, std::uint8_t>(std::span<const std::uint32_t>(wide),
                                              std::span<std::uint8_t>(back));
  EXPECT_EQ(back, narrow);
}

TEST_F(HistRleTest, PConvertNarrowingTruncates) {
  const std::vector<std::uint32_t> wide{0x1FF, 0x100, 0xAB};
  std::vector<std::uint8_t> narrow(3);
  svm::p_convert<std::uint32_t, std::uint8_t>(std::span<const std::uint32_t>(wide),
                                              std::span<std::uint8_t>(narrow));
  EXPECT_EQ(narrow, (std::vector<std::uint8_t>{0xFF, 0x00, 0xAB}));
}

TEST_F(HistRleTest, VextSignExtendsSignedTargets) {
  const std::vector<std::int8_t> s{-1, 5, -128};
  const auto v = rvv::vle<std::int8_t>(std::span<const std::int8_t>(s), 3);
  const auto w = rvv::vext<std::int32_t>(v, 3);
  EXPECT_EQ(w[0], -1);
  EXPECT_EQ(w[1], 5);
  EXPECT_EQ(w[2], -128);
  const std::vector<std::uint8_t> u{0xFF};
  const auto vu = rvv::vle<std::uint8_t>(std::span<const std::uint8_t>(u), 1);
  const auto wu = rvv::vext<std::uint32_t>(vu, 1);
  EXPECT_EQ(wu[0], 0xFFu);  // zero extension for unsigned targets
}

}  // namespace
