// Unit tests for rvv::config and rvv::Machine: VLMAX rules, the vsetvl
// contract, and active-machine scoping.
#include <gtest/gtest.h>

#include "rvv/rvv.hpp"

namespace {

using namespace rvvsvm;

TEST(Config, VlmaxFollowsSpecFormula) {
  // VLMAX = VLEN / SEW * LMUL (RVV 1.0 section 3.4.2).
  EXPECT_EQ(rvv::vlmax_for(1024, 32, 1), 32u);
  EXPECT_EQ(rvv::vlmax_for(1024, 32, 8), 256u);
  EXPECT_EQ(rvv::vlmax_for(128, 64, 1), 2u);
  EXPECT_EQ(rvv::vlmax_for(128, 8, 8), 128u);
  EXPECT_EQ(rvv::vlmax_for(512, 16, 2), 64u);
}

TEST(Config, VlRuleIsMinAvlVlmax) {
  EXPECT_EQ(rvv::vl_for(10, 32), 10u);
  EXPECT_EQ(rvv::vl_for(32, 32), 32u);
  EXPECT_EQ(rvv::vl_for(100, 32), 32u);
  EXPECT_EQ(rvv::vl_for(0, 32), 0u);
}

TEST(Config, ValidLmulAndSew) {
  for (unsigned l : {1u, 2u, 4u, 8u}) EXPECT_TRUE(rvv::valid_lmul(l));
  for (unsigned l : {0u, 3u, 5u, 16u}) EXPECT_FALSE(rvv::valid_lmul(l));
  for (unsigned s : {8u, 16u, 32u, 64u}) EXPECT_TRUE(rvv::valid_sew(s));
  for (unsigned s : {0u, 4u, 12u, 128u}) EXPECT_FALSE(rvv::valid_sew(s));
}

TEST(Config, TailPoisonIsAllOnes) {
  EXPECT_EQ(rvv::kTailPoison<std::uint32_t>, 0xFFFFFFFFu);
  EXPECT_EQ(rvv::kTailPoison<std::uint8_t>, 0xFFu);
  EXPECT_EQ(rvv::kTailPoison<std::int32_t>, -1);
}

TEST(Machine, RejectsInvalidVlen) {
  EXPECT_THROW(rvv::Machine(rvv::Machine::Config{.vlen_bits = 0}),
               std::invalid_argument);
  EXPECT_THROW(rvv::Machine(rvv::Machine::Config{.vlen_bits = 48}),
               std::invalid_argument);
  EXPECT_THROW(rvv::Machine(rvv::Machine::Config{.vlen_bits = 100}),
               std::invalid_argument);
  EXPECT_NO_THROW(rvv::Machine(rvv::Machine::Config{.vlen_bits = 64}));
}

TEST(Machine, VlmaxPerTypeAndLmul) {
  rvv::Machine m(rvv::Machine::Config{.vlen_bits = 256});
  EXPECT_EQ(m.vlmax<std::uint8_t>(), 32u);
  EXPECT_EQ(m.vlmax<std::uint16_t>(), 16u);
  EXPECT_EQ(m.vlmax<std::uint32_t>(), 8u);
  EXPECT_EQ(m.vlmax<std::uint64_t>(), 4u);
  EXPECT_EQ(m.vlmax<std::uint32_t>(8), 64u);
}

TEST(Machine, VsetvlChargesOneConfigInstruction) {
  rvv::Machine m(rvv::Machine::Config{.vlen_bits = 256});
  EXPECT_EQ(m.vsetvl<std::uint32_t>(100), 8u);
  EXPECT_EQ(m.vsetvl<std::uint32_t>(5), 5u);
  EXPECT_EQ(m.vsetvlmax<std::uint32_t>(4), 32u);
  EXPECT_EQ(m.counter().count(sim::InstClass::kVectorConfig), 3u);
}

TEST(Machine, ActiveRequiresScope) {
  EXPECT_THROW(static_cast<void>(rvv::Machine::active()), std::logic_error);
  EXPECT_EQ(rvv::Machine::active_or_null(), nullptr);
  rvv::Machine m;
  {
    rvv::MachineScope scope(m);
    EXPECT_EQ(&rvv::Machine::active(), &m);
  }
  EXPECT_EQ(rvv::Machine::active_or_null(), nullptr);
}

TEST(Machine, ScopesNestAndRestore) {
  rvv::Machine outer(rvv::Machine::Config{.vlen_bits = 128});
  rvv::Machine inner(rvv::Machine::Config{.vlen_bits = 512});
  rvv::MachineScope s1(outer);
  {
    rvv::MachineScope s2(inner);
    EXPECT_EQ(rvv::Machine::active().vlen_bits(), 512u);
  }
  EXPECT_EQ(rvv::Machine::active().vlen_bits(), 128u);
}

TEST(Machine, RegfilePresentByDefaultAbsentWhenDisabled) {
  rvv::Machine with(rvv::Machine::Config{.vlen_bits = 128});
  EXPECT_NE(with.regfile(), nullptr);
  rvv::Machine without(
      rvv::Machine::Config{.vlen_bits = 128, .model_register_pressure = false});
  EXPECT_EQ(without.regfile(), nullptr);
}

TEST(Machine, DisabledRegfileStillCountsInstructions) {
  rvv::Machine m(
      rvv::Machine::Config{.vlen_bits = 128, .model_register_pressure = false});
  rvv::MachineScope scope(m);
  const auto v = rvv::vmv_v_x<std::uint32_t>(1u, 4);
  const auto w = rvv::vadd(v, v, 4);
  EXPECT_EQ(w[0], 2u);
  EXPECT_EQ(m.counter().count(sim::InstClass::kVectorMove), 1u);
  EXPECT_EQ(m.counter().count(sim::InstClass::kVectorArith), 1u);
}

}  // namespace
