// Sharded execution engine (src/par): partition math, fork-join pool,
// bit-identical two-level collectives, and the determinism invariant —
// merged dynamic instruction counts must depend only on (n, shard_size),
// never on the hart count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include "apps/apps.hpp"
#include "par/par.hpp"
#include "svm/svm.hpp"

namespace {

using namespace rvvsvm;
using T = std::uint32_t;

std::vector<T> random_u32(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(rng());
  return v;
}

std::vector<T> random_flags(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) x = rng() & 1u;
  return v;
}

TEST(Partition, ShardsCoverArrayExactly) {
  const auto shards = par::make_shards(10000, 4096);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0], (par::ShardRange{0, 4096}));
  EXPECT_EQ(shards[1], (par::ShardRange{4096, 8192}));
  EXPECT_EQ(shards[2], (par::ShardRange{8192, 10000}));
  EXPECT_TRUE(par::make_shards(0, 4096).empty());
  EXPECT_EQ(par::make_shards(1, 4096).size(), 1u);
  EXPECT_EQ(par::make_shards(8192, 4096).size(), 2u);
}

TEST(Partition, HartAssignmentIsContiguousAndComplete) {
  for (const unsigned harts : {1u, 2u, 3u, 4u, 8u}) {
    for (const std::size_t num_shards : {1u, 2u, 7u, 8u, 9u, 64u}) {
      std::size_t covered = 0;
      std::size_t expect_begin = 0;
      for (unsigned h = 0; h < harts; ++h) {
        const auto range = par::shards_for_hart(num_shards, harts, h);
        EXPECT_EQ(range.begin, expect_begin);
        expect_begin = range.end;
        covered += range.size();
      }
      EXPECT_EQ(covered, num_shards) << harts << " harts, " << num_shards
                                     << " shards";
      EXPECT_EQ(expect_begin, num_shards);
    }
  }
}

TEST(HartPool, RunsEveryShardExactlyOnce) {
  par::HartPool pool({.harts = 4, .shard_size = 64});
  std::vector<std::atomic<int>> hits(37);
  pool.for_shards(hits.size(), [&](std::size_t s) { hits[s].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(HartPool, ActiveMachineIsPerHart) {
  par::HartPool pool({.harts = 4, .shard_size = 1});
  std::vector<const rvv::Machine*> seen(4, nullptr);
  pool.for_shards(4, [&](std::size_t s) {
    seen[s] = &rvv::Machine::active();
  });
  // 4 shards over 4 harts: one shard each, so all four machines appear.
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
  EXPECT_EQ(std::count(seen.begin(), seen.end(), nullptr), 0);
}

TEST(HartPool, PropagatesExceptions) {
  par::HartPool pool({.harts = 2, .shard_size = 1});
  EXPECT_THROW(
      pool.for_shards(4, [](std::size_t s) {
        if (s == 3) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // Pool survives and runs the next job.
  std::atomic<int> ran{0};
  pool.for_shards(2, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 2);
}

TEST(HartPool, RejectsBadConfig) {
  EXPECT_THROW(par::HartPool({.harts = 1, .shard_size = 0}),
               std::invalid_argument);
  EXPECT_THROW(par::HartPool({.harts = 1, .machine = {.vlen_bits = 96}}),
               std::invalid_argument);
}

/// A machine may be handed from one thread to another between kernels (all
/// buffers drained in between) — the pattern the fork-join runner relies on.
TEST(HartPool, MachineMayMoveThreadsWhenDrained) {
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 256});
  std::thread worker([&] {
    rvv::MachineScope scope(machine);
    auto data = random_u32(1000, 1);
    svm::plus_scan<T>(std::span<T>(data));
  });
  worker.join();
  rvv::MachineScope scope(machine);
  auto data = random_u32(1000, 2);
  svm::plus_scan<T>(std::span<T>(data));  // re-binds the drained pool here
  EXPECT_GT(machine.counter().total(), 0u);
}

// ---------------------------------------------------------------------------
// Collectives: bit-identical to their single-hart svm:: counterparts.

template <class ParKernel, class SvmKernel>
void expect_matches_single_hart(std::size_t n, unsigned vlen,
                                std::size_t shard_size, unsigned harts,
                                ParKernel par_kernel, SvmKernel svm_kernel) {
  auto par_data = random_u32(n, 42);
  auto svm_data = par_data;

  par::HartPool pool({.harts = harts, .shard_size = shard_size,
                      .machine = {.vlen_bits = vlen}});
  par_kernel(pool, std::span<T>(par_data));

  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = vlen});
  rvv::MachineScope scope(machine);
  svm_kernel(std::span<T>(svm_data));

  ASSERT_EQ(par_data, svm_data) << "n=" << n << " vlen=" << vlen
                                << " shard=" << shard_size << " harts=" << harts;
}

TEST(ParCollectives, ScanInclusiveMatchesSingleHart) {
  for (const std::size_t n : {0u, 1u, 100u, 4096u, 10000u}) {
    for (const unsigned vlen : {128u, 1024u}) {
      expect_matches_single_hart(
          n, vlen, /*shard_size=*/1024, /*harts=*/3,
          [](par::HartPool& pool, std::span<T> d) { par::plus_scan<T>(pool, d); },
          [](std::span<T> d) { svm::plus_scan<T>(d); });
    }
  }
}

TEST(ParCollectives, ScanInclusiveMaxAndXorOps) {
  expect_matches_single_hart(
      10000, 512, 512, 4,
      [](par::HartPool& pool, std::span<T> d) { par::max_scan<T>(pool, d); },
      [](std::span<T> d) { svm::max_scan<T>(d); });
  expect_matches_single_hart(
      10000, 512, 512, 4,
      [](par::HartPool& pool, std::span<T> d) {
        par::scan_inclusive<svm::XorOp, T>(pool, d);
      },
      [](std::span<T> d) { svm::xor_scan<T>(d); });
}

TEST(ParCollectives, ScanInclusiveHighLmul) {
  expect_matches_single_hart(
      10000, 256, 2048, 2,
      [](par::HartPool& pool, std::span<T> d) { par::plus_scan<T, 8>(pool, d); },
      [](std::span<T> d) { svm::plus_scan<T, 8>(d); });
}

TEST(ParCollectives, ScanExclusiveMatchesSingleHart) {
  for (const std::size_t n : {1u, 100u, 4096u, 10000u}) {
    expect_matches_single_hart(
        n, 1024, 1024, 3,
        [](par::HartPool& pool, std::span<T> d) {
          par::plus_scan_exclusive<T>(pool, d);
        },
        [](std::span<T> d) { svm::plus_scan_exclusive<T>(d); });
  }
}

TEST(ParCollectives, ReduceMatchesSingleHart) {
  const auto data = random_u32(10000, 7);
  par::HartPool pool({.harts = 4, .shard_size = 999,
                      .machine = {.vlen_bits = 512}});
  const T par_sum = par::reduce<svm::PlusOp, T>(pool, std::span<const T>(data));

  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 512});
  rvv::MachineScope scope(machine);
  const T svm_sum = svm::reduce<svm::PlusOp, T>(std::span<const T>(data));
  EXPECT_EQ(par_sum, svm_sum);
  EXPECT_EQ(par_sum,
            std::accumulate(data.begin(), data.end(), T{0}));  // wraps like T
}

TEST(ParCollectives, ReduceEmptyIsIdentity) {
  par::HartPool pool({.harts = 2, .shard_size = 64});
  EXPECT_EQ((par::reduce<svm::PlusOp, T>(pool, std::span<const T>())), T{0});
}

TEST(ParCollectives, SplitMatchesSingleHart) {
  for (const std::size_t n : {1u, 100u, 5000u, 10000u}) {
    const auto src = random_u32(n, 11);
    const auto flags = random_flags(n, 13);
    std::vector<T> par_dst(n), svm_dst(n);

    par::HartPool pool({.harts = 3, .shard_size = 768,
                        .machine = {.vlen_bits = 1024}});
    const std::size_t par_count =
        par::split<T>(pool, std::span<const T>(src), std::span<T>(par_dst),
                      std::span<const T>(flags));

    rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 1024});
    rvv::MachineScope scope(machine);
    const std::size_t svm_count =
        svm::split<T>(std::span<const T>(src), std::span<T>(svm_dst),
                      std::span<const T>(flags));

    EXPECT_EQ(par_count, svm_count) << "n=" << n;
    EXPECT_EQ(par_dst, svm_dst) << "n=" << n;
  }
}

TEST(ParCollectives, RadixSortMatchesSingleHartAndStdSort) {
  auto par_data = random_u32(10000, 21);
  auto apps_data = par_data;
  auto ref = par_data;

  par::HartPool pool({.harts = 4, .shard_size = 1024,
                      .machine = {.vlen_bits = 1024}});
  par::split_radix_sort<T>(pool, std::span<T>(par_data));

  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 1024});
  rvv::MachineScope scope(machine);
  apps::split_radix_sort<T>(std::span<T>(apps_data));

  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(par_data, ref);
  EXPECT_EQ(par_data, apps_data);
}

TEST(ParCollectives, BoundedKeyRadixSortSorts) {
  auto data = random_u32(5000, 23);
  for (auto& x : data) x &= 0xFFu;
  auto ref = data;
  par::HartPool pool({.harts = 2, .shard_size = 512,
                      .machine = {.vlen_bits = 256}});
  par::split_radix_sort<T>(pool, std::span<T>(data), /*key_bits=*/8);
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(data, ref);
}

// ---------------------------------------------------------------------------
// Determinism invariant: merged counts depend on (n, shard_size) only.

TEST(ParCounts, MergedCountsInvariantAcrossHartCounts) {
  constexpr std::size_t kN = 10000;
  constexpr std::size_t kShard = 1024;

  std::vector<sim::CountSnapshot> merged;
  for (const unsigned harts : {1u, 2u, 4u, 8u}) {
    par::HartPool pool({.harts = harts, .shard_size = kShard,
                        .machine = {.vlen_bits = 1024}});
    auto data = random_u32(kN, 3);
    par::plus_scan<T>(pool, std::span<T>(data));
    auto flags = random_flags(kN, 5);
    std::vector<T> dst(kN);
    static_cast<void>(par::split<T>(pool, std::span<const T>(data),
                                    std::span<T>(dst),
                                    std::span<const T>(flags)));
    merged.push_back(pool.merged_counts());
  }
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].total(), merged[0].total());
    for (std::size_t c = 0; c < sim::kNumInstClasses; ++c) {
      const auto cls = static_cast<sim::InstClass>(c);
      EXPECT_EQ(merged[i].count(cls), merged[0].count(cls))
          << "class " << sim::to_string(cls) << " differs at hart count index "
          << i;
    }
  }
}

TEST(ParCounts, MergedCountsDeterministicAcrossRuns) {
  const auto run_once = [] {
    par::HartPool pool({.harts = 3, .shard_size = 512,
                        .machine = {.vlen_bits = 256}});
    auto data = random_u32(5000, 9);
    par::plus_scan_exclusive<T>(pool, std::span<T>(data));
    return pool.merged_counts().total();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ParCounts, ResetCountsZeroesEveryHart) {
  par::HartPool pool({.harts = 2, .shard_size = 256});
  auto data = random_u32(2000, 1);
  par::plus_scan<T>(pool, std::span<T>(data));
  EXPECT_GT(pool.merged_counts().total(), 0u);
  pool.reset_counts();
  EXPECT_EQ(pool.merged_counts().total(), 0u);
  for (const auto& snap : pool.per_hart_counts()) EXPECT_EQ(snap.total(), 0u);
}

}  // namespace
