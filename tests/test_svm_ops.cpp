// Tests for the derived operations (enumerate, get_flags, split) and the
// permutation class (permute, gather, pack, reverse): the building blocks
// of the split radix sort, each checked against scalar references and
// the model's algebraic identities (enumerate == exclusive scan of flags,
// split is a stable partition, permute is a bijection).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "svm/baseline/baseline.hpp"
#include "svm/svm.hpp"
#include "test_util.hpp"

namespace {

using namespace rvvsvm;
using test::random_flags;
using test::random_vector;
using T = std::uint32_t;

class OpsTest : public ::testing::Test {
 protected:
  rvv::Machine machine{rvv::Machine::Config{.vlen_bits = 256}};
  rvv::MachineScope scope{machine};
};

TEST_F(OpsTest, EnumerateEqualsExclusiveScanOfFlags) {
  for (const std::size_t n : test::boundary_sizes(machine.vlmax<T>())) {
    const auto flags = random_flags<T>(n, static_cast<std::uint32_t>(n) + 1, 0.4);
    std::vector<T> dst(n);
    const std::size_t total = svm::enumerate<T>(std::span<const T>(flags),
                                                std::span<T>(dst), true);
    T count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(dst[i], count) << i;
      if (flags[i] == 1) ++count;
    }
    EXPECT_EQ(total, count);
  }
}

TEST_F(OpsTest, EnumerateZeroFlags) {
  const std::vector<T> flags{0, 1, 0, 0, 1, 0};
  std::vector<T> dst(6);
  const std::size_t zeros = svm::enumerate<T>(std::span<const T>(flags),
                                              std::span<T>(dst), false);
  EXPECT_EQ(zeros, 4u);
  EXPECT_EQ(dst, (std::vector<T>{0, 1, 1, 2, 3, 3}));
}

TEST_F(OpsTest, EnumerateOfOnesComplementsEnumerateOfZeros) {
  const auto flags = random_flags<T>(300, 2, 0.5);
  std::vector<T> e0(300), e1(300);
  const auto z = svm::enumerate<T>(std::span<const T>(flags), std::span<T>(e0), false);
  const auto o = svm::enumerate<T>(std::span<const T>(flags), std::span<T>(e1), true);
  EXPECT_EQ(z + o, 300u);
  for (std::size_t i = 0; i < 300; ++i) {
    ASSERT_EQ(e0[i] + e1[i], static_cast<T>(i)) << i;
  }
}

TEST_F(OpsTest, GetFlagsExtractsBit) {
  const auto src = random_vector<T>(200, 3);
  std::vector<T> flags(200);
  for (const unsigned bit : {0u, 5u, 31u}) {
    svm::get_flags<T>(std::span<const T>(src), std::span<T>(flags), bit);
    for (std::size_t i = 0; i < src.size(); ++i) {
      ASSERT_EQ(flags[i], (src[i] >> bit) & 1u) << "bit=" << bit << " i=" << i;
    }
  }
}

TEST_F(OpsTest, SplitIsStablePartition) {
  const auto src = random_vector<T>(257, 4, 1000);
  const auto flags = random_flags<T>(257, 5, 0.5);
  std::vector<T> dst(257);
  const std::size_t zeros = svm::split<T>(std::span<const T>(src), std::span<T>(dst),
                                          std::span<const T>(flags));
  // Reference stable partition.
  std::vector<T> expect;
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (flags[i] == 0) expect.push_back(src[i]);
  }
  const std::size_t expect_zeros = expect.size();
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (flags[i] != 0) expect.push_back(src[i]);
  }
  EXPECT_EQ(zeros, expect_zeros);
  EXPECT_EQ(dst, expect);
}

TEST_F(OpsTest, SplitAllZerosAllOnes) {
  const auto src = random_vector<T>(50, 6);
  std::vector<T> dst(50);
  const std::vector<T> zeros(50, 0);
  EXPECT_EQ(svm::split<T>(std::span<const T>(src), std::span<T>(dst),
                          std::span<const T>(zeros)),
            50u);
  EXPECT_EQ(dst, src);
  const std::vector<T> ones(50, 1);
  EXPECT_EQ(svm::split<T>(std::span<const T>(src), std::span<T>(dst),
                          std::span<const T>(ones)),
            0u);
  EXPECT_EQ(dst, src);
}

TEST_F(OpsTest, PermuteIsBijection) {
  const std::size_t n = 123;
  const auto src = random_vector<T>(n, 7);
  // Build a random permutation as the index vector.
  std::vector<T> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  std::mt19937 rng(8);
  std::shuffle(idx.begin(), idx.end(), rng);
  std::vector<T> dst(n, 0);
  svm::permute<T>(std::span<const T>(src), std::span<T>(dst), std::span<const T>(idx));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(dst[idx[i]], src[i]) << i;
  }
  // Inverting through gather recovers the source.
  std::vector<T> back(n);
  svm::gather<T>(std::span<const T>(dst), std::span<T>(back), std::span<const T>(idx));
  EXPECT_EQ(back, src);
}

TEST_F(OpsTest, PermuteOutOfRangeIndexThrows) {
  const std::vector<T> src{1, 2};
  const std::vector<T> idx{0, 5};
  std::vector<T> dst(2);
  EXPECT_THROW(svm::permute<T>(std::span<const T>(src), std::span<T>(dst),
                               std::span<const T>(idx)),
               std::out_of_range);
}

TEST_F(OpsTest, PermuteMaskedScattersOnlyFlagged) {
  const std::vector<T> src{10, 20, 30};
  const std::vector<T> idx{0, 1, 2};
  const std::vector<T> flags{1, 0, 1};
  std::vector<T> dst(3, 99);
  svm::permute_masked<T>(std::span<const T>(src), std::span<T>(dst),
                         std::span<const T>(idx), std::span<const T>(flags));
  EXPECT_EQ(dst, (std::vector<T>{10, 99, 30}));
}

TEST_F(OpsTest, PackKeepsOrderAndCount) {
  const auto src = random_vector<T>(311, 9);
  const auto flags = random_flags<T>(311, 10, 0.3);
  std::vector<T> dst(311, 0);
  const std::size_t kept = svm::pack<T>(std::span<const T>(src), std::span<T>(dst),
                                        std::span<const T>(flags));
  std::vector<T> expect;
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (flags[i] != 0) expect.push_back(src[i]);
  }
  EXPECT_EQ(kept, expect.size());
  EXPECT_EQ(std::vector<T>(dst.begin(), dst.begin() + static_cast<long>(kept)), expect);
}

TEST_F(OpsTest, PackDestinationTooSmallThrows) {
  const std::vector<T> src{1, 2, 3};
  const std::vector<T> flags{1, 1, 1};
  std::vector<T> dst(2);
  EXPECT_THROW(static_cast<void>(svm::pack<T>(std::span<const T>(src), std::span<T>(dst),
                                              std::span<const T>(flags))),
               std::out_of_range);
}

TEST_F(OpsTest, ReverseAllSizes) {
  for (const std::size_t n : test::boundary_sizes(machine.vlmax<T>())) {
    const auto src = random_vector<T>(n, static_cast<std::uint32_t>(n) + 11);
    std::vector<T> dst(n);
    svm::reverse<T>(std::span<const T>(src), std::span<T>(dst));
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(dst[i], src[n - 1 - i]) << i;
  }
}

TEST_F(OpsTest, IndexFill) {
  std::vector<T> v(100);
  svm::index_fill<T>(std::span<T>(v));
  for (std::size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v[i], i);
  svm::index_fill<T>(std::span<T>(v), 1000u);
  for (std::size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v[i], 1000 + i);
}

TEST_F(OpsTest, SplitMatchesBaselineSplit) {
  const auto src = random_vector<T>(400, 12);
  const auto flags = random_flags<T>(400, 13, 0.6);
  std::vector<T> vec_dst(400), base_dst(400);
  const auto a = svm::split<T>(std::span<const T>(src), std::span<T>(vec_dst),
                               std::span<const T>(flags));
  const auto b = svm::baseline::split<T>(std::span<const T>(src),
                                         std::span<T>(base_dst),
                                         std::span<const T>(flags));
  EXPECT_EQ(a, b);
  EXPECT_EQ(vec_dst, base_dst);
}

}  // namespace
