// Integration and robustness tests across the full stack: randomized
// differential sweeps (vectorized kernels vs counted baselines over many
// seeds), machine-per-thread isolation, and cross-VLEN result invariance.
#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "apps/apps.hpp"
#include "svm/baseline/baseline.hpp"
#include "svm/baseline/qsort.hpp"
#include "svm/svm.hpp"
#include "test_util.hpp"

namespace {

using namespace rvvsvm;
using test::random_flags;
using test::random_vector;
using T = std::uint32_t;

// --- randomized differential sweeps (vector vs baseline, many seeds) --------

class SeedSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SeedSweep, AllPrimitivesAgreeWithBaselines) {
  const std::uint32_t seed = GetParam();
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 128u << (seed % 4)});
  rvv::MachineScope scope(machine);
  const std::size_t n = 100 + (seed * 37) % 900;

  const auto data = random_vector<T>(n, seed);
  const auto flags01 = random_flags<T>(n, seed + 1, 0.5);
  const auto heads = random_flags<T>(n, seed + 2, 0.08);

  {
    auto vec = data;
    auto base = data;
    svm::p_add<T>(std::span<T>(vec), seed);
    svm::baseline::p_add<T>(std::span<T>(base), seed);
    ASSERT_EQ(vec, base);
  }
  {
    auto vec = data;
    auto base = data;
    svm::plus_scan<T>(std::span<T>(vec));
    svm::baseline::plus_scan<T>(std::span<T>(base));
    ASSERT_EQ(vec, base);
  }
  {
    auto vec = data;
    auto base = data;
    svm::plus_scan_exclusive<T>(std::span<T>(vec));
    svm::baseline::plus_scan_exclusive<T>(std::span<T>(base));
    ASSERT_EQ(vec, base);
  }
  {
    auto vec = data;
    auto base = data;
    svm::seg_plus_scan<T>(std::span<T>(vec), std::span<const T>(heads));
    svm::baseline::seg_plus_scan<T>(std::span<T>(base), std::span<const T>(heads));
    ASSERT_EQ(vec, base);
  }
  {
    std::vector<T> vec_dst(n), base_dst(n);
    const auto a = svm::enumerate<T>(std::span<const T>(flags01), std::span<T>(vec_dst), true);
    const auto b = svm::baseline::enumerate<T>(std::span<const T>(flags01),
                                               std::span<T>(base_dst), true);
    ASSERT_EQ(a, b);
    ASSERT_EQ(vec_dst, base_dst);
  }
  {
    std::vector<T> vec_dst(n), base_dst(n);
    const auto a = svm::split<T>(std::span<const T>(data), std::span<T>(vec_dst),
                                 std::span<const T>(flags01));
    const auto b = svm::baseline::split<T>(std::span<const T>(data),
                                           std::span<T>(base_dst),
                                           std::span<const T>(flags01));
    ASSERT_EQ(a, b);
    ASSERT_EQ(vec_dst, base_dst);
  }
  {
    auto radix = data;
    auto qsorted = data;
    apps::split_radix_sort<T>(std::span<T>(radix));
    svm::baseline::qsort_u32(std::span<T>(qsorted));
    ASSERT_EQ(radix, qsorted);
  }
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, SeedSweep,
                         ::testing::Range(1000u, 1020u));

// --- result invariance across machine configurations ------------------------

TEST(Invariance, ResultsIdenticalAcrossVlenAndLmul) {
  const auto input = random_vector<T>(1777, 300);
  const auto heads = random_flags<T>(1777, 301, 0.05);
  std::vector<std::vector<T>> results;
  for (const unsigned vlen : {128u, 256u, 512u, 1024u}) {
    rvv::Machine machine(rvv::Machine::Config{.vlen_bits = vlen});
    rvv::MachineScope scope(machine);
    auto d = input;
    svm::seg_plus_scan<T>(std::span<T>(d), std::span<const T>(heads));
    results.push_back(std::move(d));
  }
  {
    rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 512});
    rvv::MachineScope scope(machine);
    auto d = input;
    svm::seg_plus_scan<T, 8>(std::span<T>(d), std::span<const T>(heads));
    results.push_back(std::move(d));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i], results[0]) << "config " << i;
  }
}

TEST(Invariance, PressureModelNeverChangesResults) {
  const auto input = random_vector<T>(3000, 302);
  const auto heads = random_flags<T>(3000, 303, 0.02);
  std::vector<T> with, without;
  for (const bool pressure : {true, false}) {
    rvv::Machine machine(
        rvv::Machine::Config{.vlen_bits = 1024, .model_register_pressure = pressure});
    rvv::MachineScope scope(machine);
    auto d = input;
    svm::seg_plus_scan<T, 8>(std::span<T>(d), std::span<const T>(heads));
    (pressure ? with : without) = std::move(d);
  }
  EXPECT_EQ(with, without);
}

// --- threading: the active machine is thread-local --------------------------

TEST(Threading, MachinesAreIsolatedPerThread) {
  constexpr int kThreads = 4;
  std::vector<std::future<std::pair<std::vector<T>, std::uint64_t>>> futures;
  for (int t = 0; t < kThreads; ++t) {
    futures.push_back(std::async(std::launch::async, [t] {
      rvv::Machine machine(
          rvv::Machine::Config{.vlen_bits = 128u << (static_cast<unsigned>(t) % 3)});
      rvv::MachineScope scope(machine);
      auto data = random_vector<T>(2000 + static_cast<std::size_t>(t), 400u + static_cast<std::uint32_t>(t));
      svm::plus_scan<T>(std::span<T>(data));
      return std::make_pair(std::move(data), machine.counter().total());
    }));
  }
  for (int t = 0; t < kThreads; ++t) {
    auto [data, count] = futures[static_cast<std::size_t>(t)].get();
    // Verify against a serial reference.
    auto expect = random_vector<T>(2000 + static_cast<std::size_t>(t), 400u + static_cast<std::uint32_t>(t));
    T acc = 0;
    for (auto& v : expect) {
      acc += v;
      v = acc;
    }
    ASSERT_EQ(data, expect) << t;
    ASSERT_GT(count, 0u);
  }
  // After all threads finish, this thread has no active machine.
  EXPECT_EQ(rvv::Machine::active_or_null(), nullptr);
}

// --- full pipeline composition ----------------------------------------------

TEST(Pipeline, SortThenRleThenHistogramConsistency) {
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 512});
  rvv::MachineScope scope(machine);
  const std::size_t bins = 32;
  const auto keys = random_vector<T>(4000, 304, bins);

  // Histogram via the app...
  std::vector<T> hist(bins);
  apps::histogram<T>(std::span<const T>(keys), std::span<T>(hist));

  // ...must agree with sorting + RLE lengths.
  auto sorted = keys;
  apps::split_radix_sort<T>(std::span<T>(sorted));
  const auto rl = apps::rle_encode<T>(std::span<const T>(sorted));
  std::vector<T> hist2(bins, 0);
  for (std::size_t r = 0; r < rl.runs(); ++r) {
    hist2[rl.values[r]] = rl.lengths[r];
  }
  EXPECT_EQ(hist, hist2);
}

}  // namespace
