// Tests of the instruction-count model itself: closed forms, determinism,
// VLEN scaling, and the Table 5 LMUL=8 spill anomaly emerging from the
// register-pressure model rather than being hard-coded.
#include <gtest/gtest.h>

#include "svm/baseline/baseline.hpp"
#include "svm/scan.hpp"
#include "svm/segmented.hpp"
#include "test_util.hpp"

namespace {

using namespace rvvsvm;
using test::random_flags;
using test::random_vector;
using T = std::uint32_t;

std::uint64_t count(unsigned vlen, bool pressure,
                    const std::function<void()>& kernel) {
  rvv::Machine machine(
      rvv::Machine::Config{.vlen_bits = vlen, .model_register_pressure = pressure});
  rvv::MachineScope scope(machine);
  kernel();
  return machine.counter().total();
}

sim::CountSnapshot snapshot(unsigned vlen, const std::function<void()>& kernel) {
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = vlen});
  rvv::MachineScope scope(machine);
  kernel();
  return machine.counter().snapshot();
}

TEST(CountModel, PlusScanClosedForm) {
  // Per full block of vl elements: 4 fixed vector instructions (vsetvl,
  // vle, carry-add, vse) + lg(vl)*(3 vector + 2 scalar) inner steps +
  // 5 strip-mine scalars + 2 carry scalars; prologue branch once.
  const unsigned vlen = 1024;  // vl = 32, lg = 5
  const std::size_t n = 32 * 10;
  auto data = random_vector<T>(n, 1);
  const auto total = count(vlen, true, [&] {
    svm::plus_scan<T, 1>(std::span<T>(data));
  });
  const std::uint64_t per_block = 4 + 5 * 5 + 5 + 2;
  EXPECT_EQ(total, per_block * 10 + 1);
}

TEST(CountModel, SegScanPerBlockSchedule) {
  // Fixed per block: vsetvl + 2 vle + vmsne + vmsbf + vmv.s.x + masked
  // carry-add + its v0 move + vse = 9 vector, 6 + 2 scalar; inner step:
  // vmseq + vmv + vslideup + vadd_m + v0 move + vmv + vslideup + vor = 8
  // vector + 2 scalar.
  const unsigned vlen = 1024;
  const std::size_t n = 32 * 7;
  auto data = random_vector<T>(n, 2);
  std::vector<T> flags(n, 0);  // no heads: worst-case inner work
  const auto total = count(vlen, true, [&] {
    svm::seg_plus_scan<T, 1>(std::span<T>(data), std::span<const T>(flags));
  });
  const std::uint64_t per_block = 9 + 8 + 5 * 10;
  EXPECT_EQ(total, per_block * 7 + 1);
}

TEST(CountModel, CountsAreDeterministic) {
  const auto run = [] {
    auto data = random_vector<T>(12345, 3);
    const auto flags = random_flags<T>(12345, 4, 0.1);
    return count(512, true, [&] {
      svm::seg_plus_scan<T>(std::span<T>(data), std::span<const T>(flags));
    });
  };
  EXPECT_EQ(run(), run());
}

TEST(CountModel, CountsAreDataIndependent) {
  // Dynamic instruction count must not depend on the element values —
  // only on n, VLEN, LMUL (flags shape is fixed here).
  const auto run = [](std::uint32_t seed) {
    auto data = random_vector<T>(5000, seed);
    return count(256, true, [&] {
      svm::plus_scan<T>(std::span<T>(data));
    });
  };
  EXPECT_EQ(run(7), run(8));
}

TEST(CountModel, DoublingVlenHalvesPAddCount) {
  const std::size_t n = 1 << 14;
  std::array<std::uint64_t, 4> c{};
  const std::array<unsigned, 4> vlens{128, 256, 512, 1024};
  for (std::size_t i = 0; i < 4; ++i) {
    auto data = random_vector<T>(n, 5);
    c[i] = count(vlens[i], true, [&] {
      svm::p_add<T>(std::span<T>(data), 1u);
    });
  }
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(c[i - 1]) / static_cast<double>(c[i]), 2.0, 0.01);
  }
}

TEST(CountModel, ScanScalesSublinearlyWithVlen) {
  // Doubling VLEN halves the block count but adds one inner scan step:
  // the ratio must sit strictly between 1 and 2 (Figure 5's point).
  const std::size_t n = 1 << 14;
  auto run = [&](unsigned vlen) {
    auto data = random_vector<T>(n, 6);
    return count(vlen, true, [&] {
      svm::plus_scan<T>(std::span<T>(data));
    });
  };
  const auto c128 = run(128);
  const auto c256 = run(256);
  const double ratio = static_cast<double>(c128) / static_cast<double>(c256);
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 2.0);
}

TEST(CountModel, SegScanLmul8AnomalyEmergesFromSpills) {
  // Paper Table 5: at N=100 LMUL=8 is *slower* than LMUL=1; at N=10^6 it is
  // faster.  Both facts must emerge from the pressure model.
  const auto run = [](std::size_t n, auto lmul_tag, bool pressure) {
    auto data = random_vector<T>(n, 7);
    const auto flags = random_flags<T>(n, 8, 0.01);
    return count(1024, pressure, [&] {
      svm::seg_plus_scan<T, decltype(lmul_tag)::value>(std::span<T>(data),
                                                       std::span<const T>(flags));
    });
  };
  using L1 = std::integral_constant<unsigned, 1>;
  using L8 = std::integral_constant<unsigned, 8>;

  EXPECT_GT(run(100, L8{}, true), run(100, L1{}, true));        // anomaly
  EXPECT_LT(run(1000000, L8{}, true), run(1000000, L1{}, true));  // recovery
  // Without the pressure model the anomaly disappears entirely.
  EXPECT_LT(run(100, L8{}, false), run(100, L1{}, false));
}

TEST(CountModel, NoSpillsBelowLmul8ForSegScan) {
  for (const unsigned lmul : {1u, 2u, 4u}) {
    rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 1024});
    rvv::MachineScope scope(machine);
    auto data = random_vector<T>(5000, 9);
    const auto flags = random_flags<T>(5000, 10, 0.05);
    switch (lmul) {
      case 1: svm::seg_plus_scan<T, 1>(std::span<T>(data), std::span<const T>(flags)); break;
      case 2: svm::seg_plus_scan<T, 2>(std::span<T>(data), std::span<const T>(flags)); break;
      default: svm::seg_plus_scan<T, 4>(std::span<T>(data), std::span<const T>(flags)); break;
    }
    EXPECT_EQ(machine.counter().snapshot().spill_total(), 0u) << "lmul=" << lmul;
  }
}

TEST(CountModel, UnsegmentedScanNeverSpills) {
  // The unsegmented scan keeps at most 3 live LMUL=8 values: it fits the
  // file exactly and must not spill even at LMUL=8.
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 1024});
  rvv::MachineScope scope(machine);
  auto data = random_vector<T>(10000, 11);
  svm::plus_scan<T, 8>(std::span<T>(data));
  EXPECT_EQ(machine.counter().snapshot().spill_total(), 0u);
}

TEST(CountModel, BaselineCountsMatchPaperTables) {
  // Paper Table 2/3/4 baseline columns at N = 10^6.
  auto a = random_vector<T>(1000000, 12);
  EXPECT_EQ(count(1024, true, [&] {
    svm::baseline::p_add<T>(std::span<T>(a), 1u);
  }), 6000001u);
  auto b = random_vector<T>(1000000, 13);
  EXPECT_EQ(count(1024, true, [&] {
    svm::baseline::plus_scan<T>(std::span<T>(b));
  }), 6000001u);
  auto c = random_vector<T>(1000000, 14);
  const auto flags = random_flags<T>(1000000, 15, 0.01);
  EXPECT_EQ(count(1024, true, [&] {
    svm::baseline::seg_plus_scan<T>(std::span<T>(c), std::span<const T>(flags));
  }), 11000001u);
}

TEST(CountModel, VectorKernelsReportVectorClasses) {
  auto data = random_vector<T>(1000, 16);
  const auto snap = snapshot(512, [&] {
    svm::plus_scan<T>(std::span<T>(data));
  });
  EXPECT_GT(snap.count(sim::InstClass::kVectorConfig), 0u);
  EXPECT_GT(snap.count(sim::InstClass::kVectorLoad), 0u);
  EXPECT_GT(snap.count(sim::InstClass::kVectorStore), 0u);
  EXPECT_GT(snap.count(sim::InstClass::kVectorArith), 0u);
  EXPECT_GT(snap.count(sim::InstClass::kVectorPermute), 0u);
  EXPECT_GT(snap.count(sim::InstClass::kVectorMove), 0u);
  EXPECT_EQ(snap.count(sim::InstClass::kScalarCall), 0u);
}

}  // namespace
