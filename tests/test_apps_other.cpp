// Tests for the remaining applications: sparse matrix-vector product,
// line-of-sight, and stream compaction.
#include <gtest/gtest.h>

#include <random>

#include "apps/compact.hpp"
#include "apps/line_of_sight.hpp"
#include "apps/spmv.hpp"
#include "test_util.hpp"

namespace {

using namespace rvvsvm;
using test::random_vector;
using T = std::uint32_t;

class AppsTest : public ::testing::Test {
 protected:
  rvv::Machine machine{rvv::Machine::Config{.vlen_bits = 256}};
  rvv::MachineScope scope{machine};
};

apps::CsrMatrix<T> make_matrix(std::size_t rows, std::size_t cols, double density,
                               std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution occ(density);
  apps::CsrMatrix<T> m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.push_back(0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (occ(rng)) {
        m.col_idx.push_back(static_cast<T>(c));
        m.values.push_back(static_cast<T>(rng() % 50));
      }
    }
    m.row_ptr.push_back(static_cast<T>(m.col_idx.size()));
  }
  m.validate();
  return m;
}

std::vector<T> ref_spmv(const apps::CsrMatrix<T>& a, const std::vector<T>& x) {
  std::vector<T> y(a.rows, 0);
  for (std::size_t r = 0; r < a.rows; ++r) {
    for (T k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      y[r] += a.values[k] * x[a.col_idx[k]];
    }
  }
  return y;
}

TEST_F(AppsTest, SpmvMatchesScalarReference) {
  const auto a = make_matrix(100, 80, 0.1, 1);
  const auto x = random_vector<T>(80, 2, 1000);
  std::vector<T> y(100);
  apps::spmv<T>(a, std::span<const T>(x), std::span<T>(y));
  EXPECT_EQ(y, ref_spmv(a, x));
}

TEST_F(AppsTest, SpmvHandlesEmptyRows) {
  apps::CsrMatrix<T> a;
  a.rows = 5;
  a.cols = 3;
  // Rows 0, 2, 4 empty; rows 1 and 3 have entries.
  a.row_ptr = {0, 0, 2, 2, 3, 3};
  a.col_idx = {0, 2, 1};
  a.values = {10, 20, 30};
  a.validate();
  const std::vector<T> x{1, 2, 3};
  std::vector<T> y(5, 99);
  apps::spmv<T>(a, std::span<const T>(x), std::span<T>(y));
  EXPECT_EQ(y, (std::vector<T>{0, 10 * 1 + 20 * 3, 0, 30 * 2, 0}));
}

TEST_F(AppsTest, SpmvLeadingEmptyRow) {
  apps::CsrMatrix<T> a;
  a.rows = 2;
  a.cols = 2;
  a.row_ptr = {0, 0, 1};
  a.col_idx = {1};
  a.values = {7};
  a.validate();
  const std::vector<T> x{5, 6};
  std::vector<T> y(2);
  apps::spmv<T>(a, std::span<const T>(x), std::span<T>(y));
  EXPECT_EQ(y, (std::vector<T>{0, 42}));
}

TEST_F(AppsTest, SpmvAllEmpty) {
  apps::CsrMatrix<T> a;
  a.rows = 4;
  a.cols = 4;
  a.row_ptr = {0, 0, 0, 0, 0};
  a.validate();
  const std::vector<T> x(4, 1);
  std::vector<T> y(4, 99);
  apps::spmv<T>(a, std::span<const T>(x), std::span<T>(y));
  EXPECT_EQ(y, (std::vector<T>{0, 0, 0, 0}));
}

TEST_F(AppsTest, SpmvIdentityMatrix) {
  apps::CsrMatrix<T> a;
  a.rows = a.cols = 6;
  a.row_ptr.push_back(0);
  for (T i = 0; i < 6; ++i) {
    a.col_idx.push_back(i);
    a.values.push_back(1);
    a.row_ptr.push_back(i + 1);
  }
  a.validate();
  const auto x = random_vector<T>(6, 3, 100);
  std::vector<T> y(6);
  apps::spmv<T>(a, std::span<const T>(x), std::span<T>(y));
  EXPECT_EQ(y, x);
}

TEST_F(AppsTest, SpmvWideMatrixAcrossBlocks) {
  const auto a = make_matrix(300, 200, 0.05, 4);
  const auto x = random_vector<T>(200, 5, 1000);
  std::vector<T> y(300);
  apps::spmv<T>(a, std::span<const T>(x), std::span<T>(y));
  EXPECT_EQ(y, ref_spmv(a, x));
}

TEST_F(AppsTest, CsrValidationCatchesCorruption) {
  auto a = make_matrix(10, 10, 0.2, 6);
  auto bad = a;
  bad.row_ptr[3] = bad.row_ptr[4] + 1;  // non-monotone
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  auto bad2 = a;
  if (!bad2.col_idx.empty()) {
    bad2.col_idx[0] = 100;  // out of range
    EXPECT_THROW(bad2.validate(), std::invalid_argument);
  }
}

std::vector<std::int64_t> ref_los(const std::vector<std::int64_t>& alt) {
  std::vector<std::int64_t> vis(alt.size(), 0);
  if (alt.empty()) return vis;
  vis[0] = 1;
  std::int64_t best = std::numeric_limits<std::int64_t>::min();
  for (std::size_t i = 1; i < alt.size(); ++i) {
    const std::int64_t slope =
        (alt[i] - alt[0]) * apps::kSlopeScale / static_cast<std::int64_t>(i);
    vis[i] = slope > best ? 1 : 0;
    best = std::max(best, slope);
  }
  return vis;
}

TEST_F(AppsTest, LineOfSightMatchesScalarReference) {
  std::mt19937 rng(7);
  std::vector<std::int64_t> alt(500);
  for (auto& a : alt) a = static_cast<std::int64_t>(rng() % 1000) - 300;
  std::vector<std::int64_t> vis(alt.size());
  apps::line_of_sight(std::span<const std::int64_t>(alt), std::span<std::int64_t>(vis));
  EXPECT_EQ(vis, ref_los(alt));
}

TEST_F(AppsTest, ConvexDescentSeesEverything) {
  // alt(i) = (N - i)^2 is convex: every chord from the observer lies above
  // the terrain between, so every point is visible.  (A *concave* descent
  // is the opposite: the nearest crest hides everything behind it.)
  constexpr std::int64_t kPoints = 64;
  std::vector<std::int64_t> alt(kPoints);
  for (std::int64_t i = 0; i < kPoints; ++i) alt[static_cast<std::size_t>(i)] = (kPoints - i) * (kPoints - i);
  std::vector<std::int64_t> vis(alt.size());
  apps::line_of_sight(std::span<const std::int64_t>(alt), std::span<std::int64_t>(vis));
  for (std::size_t i = 0; i < vis.size(); ++i) EXPECT_EQ(vis[i], 1) << i;
}

TEST_F(AppsTest, LineOfSightWallBlocks) {
  std::vector<std::int64_t> alt(32, 10);
  alt[5] = 1000;  // a wall
  std::vector<std::int64_t> vis(alt.size());
  apps::line_of_sight(std::span<const std::int64_t>(alt), std::span<std::int64_t>(vis));
  EXPECT_EQ(vis[5], 1);
  for (std::size_t i = 6; i < vis.size(); ++i) EXPECT_EQ(vis[i], 0) << i;
}

TEST_F(AppsTest, LineOfSightTinyInputs) {
  std::vector<std::int64_t> empty;
  apps::line_of_sight(std::span<const std::int64_t>(empty),
                      std::span<std::int64_t>(empty));
  std::vector<std::int64_t> one{5};
  std::vector<std::int64_t> vis1(1);
  apps::line_of_sight(std::span<const std::int64_t>(one), std::span<std::int64_t>(vis1));
  EXPECT_EQ(vis1[0], 1);
}

TEST_F(AppsTest, CompactGreaterKeepsOrder) {
  const auto src = random_vector<T>(400, 8, 100);
  std::vector<T> dst(400);
  const std::size_t kept =
      apps::compact_greater<T>(std::span<const T>(src), std::span<T>(dst), 50u);
  std::vector<T> expect;
  for (const T v : src) {
    if (v > 50u) expect.push_back(v);
  }
  EXPECT_EQ(kept, expect.size());
  EXPECT_EQ(std::vector<T>(dst.begin(), dst.begin() + static_cast<long>(kept)), expect);
}

TEST_F(AppsTest, PartitionByThreshold) {
  const auto src = random_vector<T>(200, 9, 100);
  std::vector<T> dst(200);
  const std::size_t boundary =
      apps::partition_by_threshold<T>(std::span<const T>(src), std::span<T>(dst), 30u);
  for (std::size_t i = 0; i < boundary; ++i) EXPECT_LE(dst[i], 30u) << i;
  for (std::size_t i = boundary; i < dst.size(); ++i) EXPECT_GT(dst[i], 30u) << i;
  EXPECT_TRUE(std::is_permutation(dst.begin(), dst.end(), src.begin()));
}

}  // namespace
