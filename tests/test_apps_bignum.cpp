// Tests for carry-lookahead bignum addition — including adversarial carry
// chains and the non-commutative operator orientation of the generic scans.
#include <gtest/gtest.h>

#include "apps/bignum.hpp"
#include "svm/lmul_advisor.hpp"
#include "test_util.hpp"

namespace {

using namespace rvvsvm;
using T = std::uint32_t;

class BignumTest : public ::testing::Test {
 protected:
  rvv::Machine machine{rvv::Machine::Config{.vlen_bits = 256}};
  rvv::MachineScope scope{machine};

  static std::pair<std::vector<T>, T> ref_add(const std::vector<T>& a,
                                              const std::vector<T>& b) {
    std::vector<T> out(a.size());
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const std::uint64_t s = static_cast<std::uint64_t>(a[i]) + b[i] + carry;
      out[i] = static_cast<T>(s);
      carry = s >> 32;
    }
    return {out, static_cast<T>(carry)};
  }

  void check(const std::vector<T>& a, const std::vector<T>& b) {
    const auto [expect, expect_carry] = ref_add(a, b);
    std::vector<T> out(a.size());
    const T carry = apps::bignum_add<1>(std::span<const T>(a), std::span<const T>(b),
                                        std::span<T>(out));
    ASSERT_EQ(out, expect);
    ASSERT_EQ(carry, expect_carry);
  }
};

TEST_F(BignumTest, RandomLimbsAllSizes) {
  for (const std::size_t n : test::boundary_sizes(machine.vlmax<T>())) {
    if (n == 0) continue;
    check(test::random_vector<T>(n, static_cast<std::uint32_t>(n) + 80),
          test::random_vector<T>(n, static_cast<std::uint32_t>(n) + 81));
  }
}

TEST_F(BignumTest, CarryChainAcrossEverything) {
  // 0xFFFF...F + 1: the carry generated in limb 0 must propagate through
  // dozens of all-ones limbs, across strip-mine block boundaries.
  const std::size_t n = 3 * machine.vlmax<T>() + 5;
  std::vector<T> a(n, ~T{0});
  std::vector<T> b(n, 0);
  b[0] = 1;
  const auto [expect, expect_carry] = ref_add(a, b);
  std::vector<T> out(n);
  const T carry = apps::bignum_add<1>(std::span<const T>(a), std::span<const T>(b),
                                      std::span<T>(out));
  EXPECT_EQ(out, expect);
  EXPECT_EQ(carry, 1u);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], 0u) << i;
}

TEST_F(BignumTest, PropagateRunsInterruptedByKills) {
  // Alternating generate / kill / long propagate runs.
  std::vector<T> a{~T{0}, ~T{0}, 5, ~T{0}, ~T{0}, ~T{0}, 1};
  std::vector<T> b{1, 0, 3, 0, 0, 0, 1};
  check(a, b);
}

TEST_F(BignumTest, NoCarriesAtAll) {
  check({1, 2, 3}, {4, 5, 6});
}

TEST_F(BignumTest, CarryOutOnlyFromLastLimb) {
  check({0, 0, ~T{0}}, {0, 0, 1});
}

TEST_F(BignumTest, SingleLimb) {
  check({~T{0}}, {~T{0}});
  check({0}, {0});
}

TEST_F(BignumTest, MatchesBaselineEverywhere) {
  for (const unsigned seed : {90u, 91u, 92u}) {
    const auto a = test::random_vector<T>(777, seed);
    // Bias b towards all-ones limbs to force long propagate chains.
    auto b = test::random_vector<T>(777, seed + 10);
    for (std::size_t i = 0; i < b.size(); i += 3) b[i] = ~T{0};
    std::vector<T> scan_out(777), ripple_out(777);
    const T c1 = apps::bignum_add<1>(std::span<const T>(a), std::span<const T>(b),
                                     std::span<T>(scan_out));
    const T c2 = apps::bignum_add_baseline(std::span<const T>(a),
                                           std::span<const T>(b),
                                           std::span<T>(ripple_out));
    EXPECT_EQ(scan_out, ripple_out);
    EXPECT_EQ(c1, c2);
  }
}

TEST_F(BignumTest, WorksAtEveryLmul) {
  const auto a = test::random_vector<T>(500, 95);
  auto b = test::random_vector<T>(500, 96);
  for (std::size_t i = 0; i < b.size(); i += 2) b[i] = ~T{0};
  const auto [expect, expect_carry] = ref_add(a, b);
  std::vector<T> o2(500), o4(500), o8(500);
  EXPECT_EQ(apps::bignum_add<2>(std::span<const T>(a), std::span<const T>(b),
                                std::span<T>(o2)),
            expect_carry);
  EXPECT_EQ(apps::bignum_add<4>(std::span<const T>(a), std::span<const T>(b),
                                std::span<T>(o4)),
            expect_carry);
  EXPECT_EQ(apps::bignum_add<8>(std::span<const T>(a), std::span<const T>(b),
                                std::span<T>(o8)),
            expect_carry);
  EXPECT_EQ(o2, expect);
  EXPECT_EQ(o4, expect);
  EXPECT_EQ(o8, expect);
}

TEST(CarryOp, MonoidLaws) {
  using Op = apps::CarryOp;
  const T states[] = {Op::kKill<T>, Op::kPropagate<T>, Op::kGenerate<T>};
  const T e = Op::identity<T>();
  for (const T x : states) {
    EXPECT_EQ(Op::scalar(e, x), x);  // left identity
    EXPECT_EQ(Op::scalar(x, e), x);  // right identity
  }
  for (const T x : states) {
    for (const T y : states) {
      for (const T z : states) {
        EXPECT_EQ(Op::scalar(Op::scalar(x, y), z), Op::scalar(x, Op::scalar(y, z)));
      }
    }
  }
  // Non-commutative: K then G resolves G; G then K resolves K.
  EXPECT_NE(Op::scalar(Op::kKill<T>, Op::kGenerate<T>),
            Op::scalar(Op::kGenerate<T>, Op::kKill<T>));
}

// --- saturating arithmetic ---------------------------------------------------

TEST(Saturating, UnsignedClamps) {
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 256});
  rvv::MachineScope scope(machine);
  const std::vector<T> a{0xFFFFFFF0u, 5, 3};
  const std::vector<T> b{0x100u, 2, 7};
  const auto va = rvv::vle<T>(std::span<const T>(a), 3);
  const auto vb = rvv::vle<T>(std::span<const T>(b), 3);
  const auto s = rvv::vsadd(va, vb, 3);
  EXPECT_EQ(s[0], 0xFFFFFFFFu);  // clamped
  EXPECT_EQ(s[1], 7u);
  const auto d = rvv::vssub(va, vb, 3);
  EXPECT_EQ(d[2], 0u);  // 3 - 7 clamps to 0
  EXPECT_EQ(d[1], 3u);
}

TEST(Saturating, SignedClampsBothWays) {
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 256});
  rvv::MachineScope scope(machine);
  using S = std::int32_t;
  const std::vector<S> a{2000000000, -2000000000, 5};
  const std::vector<S> b{2000000000, -2000000000, -3};
  const auto va = rvv::vle<S>(std::span<const S>(a), 3);
  const auto vb = rvv::vle<S>(std::span<const S>(b), 3);
  const auto s = rvv::vsadd(va, vb, 3);
  EXPECT_EQ(s[0], std::numeric_limits<S>::max());
  EXPECT_EQ(s[1], std::numeric_limits<S>::min());
  EXPECT_EQ(s[2], 2);
  const auto d = rvv::vssub(va, vb, 3);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[2], 8);
}

// --- LMUL advisor -------------------------------------------------------------

TEST(LmulAdvisor, MatchesKernelSweetSpots) {
  // p-add: 1 live value -> LMUL 8.
  const auto padd = svm::recommend_lmul<T>(100000, 1024, 1);
  EXPECT_EQ(padd.lmul, 8u);
  EXPECT_FALSE(padd.spills_unavoidable);
  // unsegmented scan: 3 live values -> still LMUL 8 (just fits).
  EXPECT_EQ(svm::recommend_lmul<T>(100000, 1024, 3).lmul, 8u);
  // segmented scan: ~6 live values -> LMUL 4, the measured Table 5 winner.
  EXPECT_EQ(svm::recommend_lmul<T>(100000, 1024, 6).lmul, 4u);
  // 8..15 live values -> LMUL 2; 16..31 -> LMUL 1.
  EXPECT_EQ(svm::recommend_lmul<T>(1000, 1024, 10).lmul, 2u);
  EXPECT_EQ(svm::recommend_lmul<T>(1000, 1024, 20).lmul, 1u);
  // Beyond 31 live values nothing fits.
  EXPECT_TRUE(svm::recommend_lmul<T>(1000, 1024, 40).spills_unavoidable);
}

TEST(LmulAdvisor, IterationCount) {
  const auto a = svm::recommend_lmul<T>(1000, 1024, 1);  // vlmax = 256 at m8
  EXPECT_EQ(a.iterations, 4u);
  const auto b = svm::recommend_lmul<T>(1000, 1024, 6);  // vlmax = 128 at m4
  EXPECT_EQ(b.iterations, 8u);
}

}  // namespace
