// Tests for the vreg/vmask value semantics that drive the register-pressure
// model: copies share one allocator value, reassignment ends the old live
// range, destruction frees the register group.
#include <gtest/gtest.h>

#include <optional>

#include "rvv/rvv.hpp"

namespace {

using namespace rvvsvm;
using T = std::uint32_t;

class VregTest : public ::testing::Test {
 protected:
  rvv::Machine machine{rvv::Machine::Config{.vlen_bits = 256}};
  rvv::MachineScope scope{machine};

  sim::VRegFileModel& regfile() { return *machine.regfile(); }
};

TEST_F(VregTest, DefiningOpsAllocateOneValue) {
  EXPECT_EQ(regfile().live_values(), 0u);
  const auto v = rvv::vmv_v_x<T>(1u, 4);
  EXPECT_EQ(regfile().live_values(), 1u);
  EXPECT_NE(v.value_id(), sim::kNoValue);
}

TEST_F(VregTest, CopiesShareTheValue) {
  const auto v = rvv::vmv_v_x<T>(1u, 4);
  {
    const auto copy = v;  // NOLINT(performance-unnecessary-copy-initialization)
    EXPECT_EQ(copy.value_id(), v.value_id());
    EXPECT_EQ(regfile().live_values(), 1u);  // a C++ copy is not a new register
  }
  EXPECT_EQ(regfile().live_values(), 1u);  // inner copy's death frees nothing
}

TEST_F(VregTest, DestructionReleasesTheGroup) {
  {
    const auto v = rvv::vmv_v_x<T>(1u, 4);
    EXPECT_EQ(regfile().live_values(), 1u);
  }
  EXPECT_EQ(regfile().live_values(), 0u);
}

TEST_F(VregTest, ReassignmentEndsOldLiveRange) {
  auto v = rvv::vmv_v_x<T>(1u, 4);
  const auto first_id = v.value_id();
  v = rvv::vadd(v, 1u, 4);  // new SSA value; old dies with the assignment
  EXPECT_NE(v.value_id(), first_id);
  EXPECT_EQ(regfile().live_values(), 1u);
  EXPECT_EQ(v[0], 2u);
}

TEST_F(VregTest, LmulGroupsOccupyLmulRegisters) {
  const auto a = rvv::vmv_v_x<T, 8>(1u, 8);
  EXPECT_EQ(regfile().peak_registers(), 8u);
  const auto b = rvv::vmv_v_x<T, 4>(1u, 8);
  EXPECT_EQ(regfile().peak_registers(), 12u);
  static_cast<void>(a);
  static_cast<void>(b);
}

TEST_F(VregTest, CapacityIsVlmax) {
  const auto m1 = rvv::vmv_v_x<T, 1>(0u, 1);
  EXPECT_EQ(m1.capacity(), 8u);  // 256/32
  const auto m8 = rvv::vmv_v_x<T, 8>(0u, 1);
  EXPECT_EQ(m8.capacity(), 64u);
  const auto bytes = rvv::vmv_v_x<std::uint8_t, 1>(0, 1);
  EXPECT_EQ(bytes.capacity(), 32u);
}

TEST_F(VregTest, MasksAreValuesToo) {
  const auto v = rvv::vmv_v_x<T>(1u, 4);
  EXPECT_EQ(regfile().live_values(), 1u);
  {
    const auto m = rvv::vmseq(v, 1u, 4);
    EXPECT_EQ(regfile().live_values(), 2u);
    static_cast<void>(m);
  }
  EXPECT_EQ(regfile().live_values(), 1u);
}

TEST_F(VregTest, MoveTransfersOwnership) {
  auto v = rvv::vmv_v_x<T>(7u, 4);
  const auto id = v.value_id();
  const auto moved = std::move(v);
  EXPECT_EQ(moved.value_id(), id);
  EXPECT_EQ(regfile().live_values(), 1u);
  EXPECT_EQ(moved[0], 7u);
}

TEST_F(VregTest, OptionalAndContainersWork) {
  std::optional<rvv::vreg<T>> slot;
  slot = rvv::vmv_v_x<T>(3u, 4);
  EXPECT_EQ(regfile().live_values(), 1u);
  std::vector<rvv::vreg<T>> values;
  for (int i = 0; i < 5; ++i) values.push_back(rvv::vmv_v_x<T>(static_cast<T>(i), 4));
  EXPECT_EQ(regfile().live_values(), 6u);
  values.clear();
  slot.reset();
  EXPECT_EQ(regfile().live_values(), 0u);
}

TEST_F(VregTest, ElemsSpanExposesReadOnlyView) {
  const auto v = rvv::vmv_v_x<T>(9u, 3);
  const auto view = v.elems();
  EXPECT_EQ(view.size(), v.capacity());
  EXPECT_EQ(view[0], 9u);
  EXPECT_EQ(view[2], 9u);
  EXPECT_EQ(view[3], rvv::kTailPoison<T>);
}

TEST(VregNoPressure, ValuesWorkWithoutTheModel) {
  rvv::Machine machine(
      rvv::Machine::Config{.vlen_bits = 256, .model_register_pressure = false});
  rvv::MachineScope scope(machine);
  auto v = rvv::vmv_v_x<T>(5u, 4);
  v = rvv::vadd(v, v, 4);
  EXPECT_EQ(v[3], 10u);
  EXPECT_EQ(v.value_id(), sim::kNoValue);  // no model, no ids
}

}  // namespace
