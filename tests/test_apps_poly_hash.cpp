// Tests for polynomial hashing (multiply-scan) and the MulOp trait.
#include <gtest/gtest.h>

#include "apps/poly_hash.hpp"
#include "svm/scan.hpp"
#include "test_util.hpp"

namespace {

using namespace rvvsvm;
using T = std::uint32_t;

class PolyHashTest : public ::testing::Test {
 protected:
  rvv::Machine machine{rvv::Machine::Config{.vlen_bits = 256}};
  rvv::MachineScope scope{machine};

  static T ref_hash(const std::vector<T>& data, T base) {
    T h = 0, p = 1;
    for (const T v : data) {
      h += v * p;
      p *= base;
    }
    return h;
  }
};

TEST_F(PolyHashTest, MatchesHornerReference) {
  for (const std::size_t n : test::boundary_sizes(machine.vlmax<T>())) {
    const auto data = test::random_vector<T>(n, static_cast<std::uint32_t>(n) + 60);
    const T expect = ref_hash(data, 31u);
    EXPECT_EQ((apps::poly_hash<T>(std::span<const T>(data), 31u)), expect) << n;
  }
}

TEST_F(PolyHashTest, MatchesCountedBaseline) {
  const auto data = test::random_vector<T>(1234, 61);
  EXPECT_EQ((apps::poly_hash<T>(std::span<const T>(data), 1000003u)),
            (apps::poly_hash_baseline<T>(std::span<const T>(data), 1000003u)));
}

TEST_F(PolyHashTest, DistinguishesPermutations) {
  // Position-dependence: a permuted input must (generically) hash different.
  const std::vector<T> a{1, 2, 3, 4};
  const std::vector<T> b{4, 3, 2, 1};
  EXPECT_NE((apps::poly_hash<T>(std::span<const T>(a), 31u)),
            (apps::poly_hash<T>(std::span<const T>(b), 31u)));
}

TEST_F(PolyHashTest, EmptyIsZero) {
  EXPECT_EQ((apps::poly_hash<T>(std::span<const T>(), 31u)), 0u);
}

TEST_F(PolyHashTest, SegmentedHashEqualsPerSegmentHash) {
  const std::size_t n = 500;
  const auto data = test::random_vector<T>(n, 62);
  const auto flags = test::random_flags<T>(n, 63, 0.05);
  std::vector<T> hashes(n);
  const std::size_t segs = apps::seg_poly_hash<T>(std::span<const T>(data),
                                                  std::span<const T>(flags), 131u,
                                                  std::span<T>(hashes));
  // Reference: hash each segment independently.
  std::vector<T> expect;
  std::size_t s = 0;
  while (s < n) {
    std::size_t e = s + 1;
    while (e < n && flags[e] == 0) ++e;
    expect.push_back(ref_hash(std::vector<T>(data.begin() + static_cast<long>(s),
                                             data.begin() + static_cast<long>(e)),
                              131u));
    s = e;
  }
  ASSERT_EQ(segs, expect.size());
  EXPECT_EQ(std::vector<T>(hashes.begin(), hashes.begin() + static_cast<long>(segs)),
            expect);
}

TEST_F(PolyHashTest, SegmentedAcrossBlocks) {
  const std::size_t vl = machine.vlmax<T>();
  const std::size_t n = 4 * vl + 1;
  const auto data = test::random_vector<T>(n, 64);
  std::vector<T> flags(n, 0);
  flags[0] = 1;
  flags[2 * vl + 1] = 1;  // one boundary mid-block
  std::vector<T> hashes(n);
  const std::size_t segs = apps::seg_poly_hash<T>(std::span<const T>(data),
                                                  std::span<const T>(flags), 257u,
                                                  std::span<T>(hashes));
  ASSERT_EQ(segs, 2u);
  EXPECT_EQ(hashes[0],
            ref_hash(std::vector<T>(data.begin(),
                                    data.begin() + static_cast<long>(2 * vl + 1)),
                     257u));
  EXPECT_EQ(hashes[1],
            ref_hash(std::vector<T>(data.begin() + static_cast<long>(2 * vl + 1),
                                    data.end()),
                     257u));
}

TEST(MulScan, PowersOfBase) {
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 256});
  rvv::MachineScope scope(machine);
  std::vector<T> v(20, 3u);
  svm::scan_inclusive<svm::MulOp, T>(std::span<T>(v));
  T p = 1;
  for (std::size_t i = 0; i < v.size(); ++i) {
    p *= 3u;
    ASSERT_EQ(v[i], p) << i;
  }
  std::vector<T> e(20, 3u);
  svm::scan_exclusive<svm::MulOp, T>(std::span<T>(e));
  EXPECT_EQ(e[0], 1u);
  EXPECT_EQ(e[1], 3u);
  EXPECT_EQ(e[5], 243u);
}

TEST(MulScan, SegmentedMultiplyScan) {
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 256});
  rvv::MachineScope scope(machine);
  std::vector<T> v{2, 3, 4, 5, 2, 2};
  const std::vector<T> flags{1, 0, 0, 1, 0, 0};
  svm::seg_scan_inclusive<svm::MulOp, T>(std::span<T>(v), std::span<const T>(flags));
  EXPECT_EQ(v, (std::vector<T>{2, 6, 24, 5, 10, 20}));
}

}  // namespace
