// The chaos suite: randomized fault injection as a regression gate.
//
// Half of this file drives the seeded chaos properties (src/check/
// properties_chaos.cpp) through the same fuzz() loop svm_fuzz uses — at
// least 200 cases per injector class, failing with a shrunk case and a
// ready-to-paste reproducer on any violation.  The other half is directed:
// hart crashes at 2, 4 and 8 harts must degrade to the exact fault-free
// result with the failure visible in the epoch report, retries and the
// inline fallback must preserve merged counts to the instruction, and the
// watchdog must cut an unresponsive hart loose without corrupting anything.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <span>
#include <thread>
#include <vector>

#include "check/fault_injection.hpp"
#include "check/oracle.hpp"
#include "par/par.hpp"
#include "rvv/rvv.hpp"
#include "svm/svm.hpp"

namespace rvvsvm {
namespace {

using u32 = std::uint32_t;
using check::FaultInjector;
using check::HartCrash;

// --- seeded chaos properties, >=200 cases per injector class ----------------

void run_property(const char* name, std::uint64_t iters) {
  check::FuzzOptions options;
  options.seed = 20260807;
  options.iters = iters;
  options.layer = name;
  const check::FuzzReport report = check::fuzz(options, nullptr);
  EXPECT_EQ(report.cases_run, iters);
  for (const auto& failure : report.failures) {
    ADD_FAILURE() << failure.property << " (iteration " << failure.iteration
                  << ", case seed " << failure.case_seed << "): "
                  << failure.message << "\n" << failure.reproducer;
  }
}

TEST(Chaos, TrapInstructionInjector) { run_property("chaos.trap_instruction", 200); }
TEST(Chaos, MemoryFaultInjector) { run_property("chaos.memory_fault", 200); }
TEST(Chaos, PoolAllocInjector) { run_property("chaos.pool_alloc", 200); }
TEST(Chaos, HartCrashInjector) { run_property("chaos.hart_crash", 200); }
TEST(Chaos, HartFallbackInjector) { run_property("chaos.hart_fallback", 200); }

// --- directed recovery tests ------------------------------------------------

std::vector<u32> iota_data(std::size_t n) {
  std::vector<u32> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

/// Fault-free reference: same collective on an identically shaped pool.
std::vector<u32> golden_scan(unsigned harts, std::size_t n) {
  par::HartPool pool({.harts = harts, .shard_size = 64,
                      .machine = {.vlen_bits = 256}});
  std::vector<u32> buf = iota_data(n);
  par::plus_scan<u32, 1>(pool, std::span<u32>(buf));
  return buf;
}

TEST(Chaos, HartCrashDegradesToCorrectResultAt248Harts) {
  constexpr std::size_t kN = 2000;
  for (const unsigned harts : {2u, 4u, 8u}) {
    const std::vector<u32> want = golden_scan(harts, kN);
    par::HartPool pool({.harts = harts,
                        .shard_size = 64,
                        .machine = {.vlen_bits = 256},
                        .recovery = {.max_retries = 1, .fallback_inline = true}});
    // Crash the last hart early in its first shard, once.
    FaultInjector inj({.trap_at_instruction = 3, .crash = true});
    pool.machine(harts - 1).set_fault_hook(&inj);
    std::vector<u32> buf = iota_data(kN);
    par::plus_scan<u32, 1>(pool, std::span<u32>(buf));
    pool.machine(harts - 1).set_fault_hook(nullptr);

    EXPECT_EQ(buf, want) << harts << " harts";
    EXPECT_EQ(inj.fired(), 1u) << harts << " harts";
    // The failure is visible in the report of the epoch it happened in.
    bool crash_reported = false;
    for (const auto& f : pool.last_report().failures) {
      EXPECT_TRUE(f.recovered);
      crash_reported = true;
    }
    // plus_scan runs three epochs; the crash lands in the first (phase 1),
    // so last_report (phase 3) is typically clean — but the abandoned-count
    // ledger and a per-hart count probe still expose it.
    if (!crash_reported) {
      EXPECT_GT(pool.abandoned_counts().total(), 0u) << harts << " harts";
    }
  }
}

TEST(Chaos, SingleEpochCrashVisibleInReport) {
  par::HartPool pool({.harts = 4,
                      .shard_size = 16,
                      .machine = {.vlen_bits = 256},
                      .recovery = {.max_retries = 1, .fallback_inline = true}});
  std::atomic<int> crashes{0};
  std::vector<std::atomic<int>> commits(8);
  pool.for_shards(8, [&](std::size_t shard) {
    if (shard == 5 && crashes.fetch_add(1) == 0) {
      throw HartCrash("injected: hart died on shard 5");
    }
    ++commits[shard];
  });
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_EQ(commits[s].load(), 1) << "shard " << s;
  }
  const par::EpochReport& report = pool.last_report();
  ASSERT_EQ(report.failures.size(), 1u);
  const par::ShardFailure& f = report.failures[0];
  EXPECT_EQ(f.shard, 5u);
  EXPECT_TRUE(f.recovered);
  EXPECT_FALSE(f.inline_fallback);  // the retry on the same hart succeeded
  EXPECT_EQ(f.attempts, 2u);
  EXPECT_EQ(f.message, "injected: hart died on shard 5");
  EXPECT_TRUE(report.all_recovered());
}

TEST(Chaos, PersistentFailureEscalatesToInlineFallback) {
  par::HartPool pool({.harts = 2,
                      .shard_size = 16,
                      .machine = {.vlen_bits = 256},
                      .recovery = {.max_retries = 2, .fallback_inline = true}});
  std::vector<std::atomic<int>> commits(4);
  pool.for_shards(4, [&](std::size_t shard) {
    // Shard 2 dies on every pool hart (current_hart() >= 0) but succeeds on
    // the calling thread's rescue machine (hart -1): a fault bound to the
    // hart, not the work — the case only the inline fallback can save.
    if (shard == 2 && current_hart() >= 0) {
      throw HartCrash("shard 2 always dies on its hart");
    }
    ++commits[shard];
  });
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(commits[s].load(), 1) << "shard " << s;
  }
  const par::EpochReport& report = pool.last_report();
  ASSERT_EQ(report.failures.size(), 1u);
  const par::ShardFailure& f = report.failures[0];
  EXPECT_EQ(f.shard, 2u);
  EXPECT_TRUE(f.recovered);
  EXPECT_TRUE(f.inline_fallback);
  EXPECT_EQ(f.attempts, 4u);  // initial try + 2 retries + fallback
  EXPECT_EQ(f.message, "shard 2 always dies on its hart");
}

TEST(Chaos, RetryPreservesMergedCountsExactly) {
  constexpr std::size_t kN = 1500;
  const auto run = [&](bool faulted) {
    par::HartPool pool({.harts = 4,
                        .shard_size = 32,
                        .machine = {.vlen_bits = 256},
                        .recovery = {.max_retries = 2, .fallback_inline = true}});
    FaultInjector inj({.trap_at_instruction = 11, .crash = true});
    if (faulted) pool.machine(2).set_fault_hook(&inj);
    std::vector<u32> buf = iota_data(kN);
    par::plus_scan<u32, 1>(pool, std::span<u32>(buf));
    if (faulted) pool.machine(2).set_fault_hook(nullptr);
    return std::pair{buf, pool.merged_counts()};
  };
  const auto [clean_data, clean_counts] = run(false);
  const auto [fault_data, fault_counts] = run(true);
  EXPECT_EQ(fault_data, clean_data);
  for (std::size_t k = 0; k < sim::kNumInstClasses; ++k) {
    const auto cls = static_cast<sim::InstClass>(k);
    EXPECT_EQ(fault_counts.count(cls), clean_counts.count(cls))
        << "merged " << sim::to_string(cls) << " drifted under retry";
  }
}

TEST(Chaos, WatchdogAbandonsHungHartAndRecoversInline) {
  par::HartPool pool({.harts = 2,
                      .shard_size = 16,
                      .machine = {.vlen_bits = 256},
                      .recovery = {.fallback_inline = true,
                                   .watchdog = std::chrono::milliseconds(200)}});
  std::atomic<bool> release{false};
  std::atomic<int> inline_runs{0};
  pool.for_shards(2, [&](std::size_t shard) {
    if (shard == 1 && !release.exchange(true)) {
      // Hang the owning hart well past the watchdog; it finishes eventually
      // and must rejoin cleanly.
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
      return;
    }
    if (shard == 1) ++inline_runs;
  });
  const par::EpochReport& report = pool.last_report();
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_TRUE(report.failures[0].timed_out);
  EXPECT_TRUE(report.failures[0].recovered);
  EXPECT_TRUE(report.failures[0].inline_fallback);
  EXPECT_EQ(inline_runs.load(), 1);
  // Give the hung hart time to finish and rejoin, then require the pool to
  // schedule across all harts again.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  std::vector<std::atomic<int>> hits(4);
  pool.for_shards(4, [&](std::size_t shard) { ++hits[shard]; });
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(hits[s].load(), 1);
  EXPECT_EQ(pool.lost_harts(), 0u);
}

TEST(Chaos, ChaosSuiteLeavesPoolsLeakFree) {
  // A pool that absorbed faults must end with zero pool bytes in use on
  // every hart machine.
  par::HartPool pool({.harts = 4,
                      .shard_size = 32,
                      .machine = {.vlen_bits = 256},
                      .recovery = {.max_retries = 1, .fallback_inline = true}});
  FaultInjector inj({.trap_at_instruction = 5, .crash = true});
  pool.machine(1).set_fault_hook(&inj);
  std::vector<u32> buf = iota_data(800);
  par::plus_scan<u32, 1>(pool, std::span<u32>(buf));
  pool.machine(1).set_fault_hook(nullptr);
  for (unsigned h = 0; h < 4; ++h) {
    EXPECT_EQ(pool.machine(h).pool_stats().bytes_in_use, 0u) << "hart " << h;
    EXPECT_EQ(pool.machine(h).pool_stats().cells_in_use, 0u) << "hart " << h;
  }
}

}  // namespace
}  // namespace rvvsvm
