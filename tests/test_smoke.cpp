// End-to-end smoke test: every public layer instantiated and run once.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "apps/apps.hpp"
#include "rvv/intrinsics.hpp"
#include "svm/baseline/baseline.hpp"
#include "svm/baseline/qsort.hpp"
#include "svm/svm.hpp"

namespace {

using namespace rvvsvm;

TEST(Smoke, FullStack) {
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 256});
  rvv::MachineScope scope(machine);

  std::mt19937 rng(42);
  std::vector<std::uint32_t> data(1000);
  for (auto& v : data) v = static_cast<std::uint32_t>(rng() % 1000);

  // Elementwise.
  auto a = data;
  svm::p_add<std::uint32_t>(std::span<std::uint32_t>(a), 7u);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], data[i] + 7u);

  // Scan.
  auto s = data;
  svm::plus_scan<std::uint32_t>(std::span<std::uint32_t>(s));
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    acc += data[i];
    ASSERT_EQ(s[i], acc) << i;
  }

  // Segmented scan.
  std::vector<std::uint32_t> flags(data.size(), 0);
  for (std::size_t i = 0; i < flags.size(); i += 100) flags[i] = 1;
  auto g = data;
  svm::seg_plus_scan<std::uint32_t>(std::span<std::uint32_t>(g),
                                    std::span<const std::uint32_t>(flags));
  acc = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (flags[i] != 0) acc = 0;
    acc += data[i];
    ASSERT_EQ(g[i], acc) << i;
  }

  // Sorts.
  auto r = data;
  apps::split_radix_sort<std::uint32_t>(std::span<std::uint32_t>(r));
  auto q = data;
  apps::scan_quicksort<std::uint32_t>(std::span<std::uint32_t>(q));
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(r, expect);
  EXPECT_EQ(q, expect);

  // Baselines.
  auto b = data;
  svm::baseline::qsort_u32(std::span<std::uint32_t>(b));
  EXPECT_EQ(b, expect);

  // Counter accumulated something in every major class.
  const auto snap = machine.counter().snapshot();
  EXPECT_GT(snap.vector_total(), 0u);
  EXPECT_GT(snap.scalar_total(), 0u);
}

TEST(Smoke, PaperIntrinsicsSpelling) {
  using namespace rvv::intrinsics;
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 128});
  rvv::MachineScope scope(machine);

  // The paper's Listing 4 (p-add) written with the intrinsic aliases.
  std::vector<std::uint32_t> a(37);
  std::iota(a.begin(), a.end(), 0u);
  std::size_t n = a.size();
  std::uint32_t* p = a.data();
  std::size_t vl = 0;
  for (; n > 0; n -= vl) {
    vl = vsetvl_e32m1(n);
    vuint32m1_t va = vle32_v_u32m1(p, vl);
    va = vadd_vx_u32m1(va, 5u, vl);
    vse32(p, va, vl);
    p += vl;
  }
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], i + 5u);
}

}  // namespace
