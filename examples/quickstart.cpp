// Quickstart: create an emulated RVV machine, run scan-vector-model
// primitives, and read back dynamic instruction counts.
//
//   $ ./examples/quickstart
//
// Walks through the three primitive classes of the model (elementwise,
// scan, permutation) exactly as a downstream user would adopt the library.
#include <cstdint>
#include <iostream>
#include <numeric>
#include <vector>

#include "sim/report.hpp"
#include "svm/svm.hpp"

int main() {
  using namespace rvvsvm;

  // 1. An emulated hart: VLEN is implementation-defined in RVV; pick 256-bit
  //    (8 x 32-bit elements per vector register at LMUL=1).
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 256});
  rvv::MachineScope scope(machine);  // kernels below run on this machine

  std::vector<std::uint32_t> v(20);
  std::iota(v.begin(), v.end(), 1u);  // 1, 2, ..., 20

  // 2. Elementwise class: v += 100.
  svm::p_add<std::uint32_t>(v, 100u);
  std::cout << "after p_add(+100):  ";
  for (auto x : v) std::cout << x << ' ';
  std::cout << '\n';

  // 3. Scan class: inclusive prefix sum (in place).
  svm::plus_scan<std::uint32_t>(v);
  std::cout << "after plus_scan:    ";
  for (auto x : v) std::cout << x << ' ';
  std::cout << '\n';

  // 4. Permutation class: reverse via an index permute.
  std::vector<std::uint32_t> reversed(v.size());
  svm::reverse<std::uint32_t>(v, reversed);
  std::cout << "after reverse:      ";
  for (auto x : reversed) std::cout << x << ' ';
  std::cout << '\n';

  // 5. Segmented scan: restart the sum at each head flag.
  std::vector<std::uint32_t> data{3, 1, 4, 1, 5, 9, 2, 6};
  std::vector<std::uint32_t> heads{1, 0, 0, 1, 0, 0, 1, 0};
  svm::seg_plus_scan<std::uint32_t>(data, heads);
  std::cout << "seg_plus_scan:      ";
  for (auto x : data) std::cout << x << ' ';
  std::cout << "   (segments restart at flags)\n";

  // 6. The metric the paper reports: dynamic instructions by class.
  std::cout << "\nDynamic instructions retired: " << machine.counter().snapshot()
            << '\n';
  return 0;
}
