// The paper's listings, nearly token-for-token, running on the emulator via
// the intrinsic alias layer (rvv/intrinsics.hpp): Listing 4 (p-add),
// Listing 6 (unsegmented plus-scan), Listing 8 (enumerate) and Listing 10
// (segmented plus-scan).  Compare with the templated library kernels in
// src/svm/, which generalize the same code over element types, operators
// and LMUL.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "rvv/intrinsics.hpp"

namespace {

using namespace rvvsvm::rvv::intrinsics;

// Listing 4: elementwise p-add (a[i] += x).
void p_add(int n, unsigned int* a, unsigned int x) {
  std::size_t vl;
  for (; n > 0; n -= static_cast<int>(vl)) {
    vl = vsetvl_e32m1(static_cast<std::size_t>(n));
    vuint32m1_t va = vle32_v_u32m1(a, vl);
    va = vadd_vx_u32m1(va, x, vl);
    vse32(a, va, vl);
    a += vl;
  }
}

// Listing 6: unsegmented plus-scan.
void plus_scan_ui(int n, unsigned int* src) {
  std::size_t vl;
  const std::size_t vlmax = vsetvlmax_e32m1();
  unsigned int carry = 0;
  vuint32m1_t x, y;
  const vuint32m1_t vec_zero = vmv_v_x_u32m1(0, vlmax);
  for (; n > 0; n -= static_cast<int>(vl)) {
    vl = vsetvl_e32m1(static_cast<std::size_t>(n));
    x = vle32_v_u32m1(src, vl);
    for (std::size_t offset = 1; offset < vl; offset <<= 1) {
      y = vslideup_vx_u32m1(vec_zero, x, offset, vl);
      x = vadd_vv_u32m1(x, y, vl);
    }
    x = vadd_vx_u32m1(x, carry, vl);
    vse32(src, x, vl);
    carry = src[vl - 1];
    src += vl;
  }
}

// Listing 8: enumerate.
unsigned int enumerate(int n, unsigned int* flags, unsigned int* dst, bool setBit) {
  std::size_t vl;
  unsigned int count = 0;
  for (; n > 0; n -= static_cast<int>(vl)) {
    vl = vsetvl_e32m1(static_cast<std::size_t>(n));
    vuint32m1_t v = vle32_v_u32m1(flags, vl);
    vbool32_t mask = vmseq_vx_u32m1_b32(v, setBit ? 1u : 0u, vl);
    v = viota_m_u32m1(mask, vl);
    v = vadd_vx_u32m1(v, count, vl);
    vse32(dst, v, vl);
    count += static_cast<unsigned int>(rvvsvm::rvv::vcpop(mask, vl));
    flags += vl;
    dst += vl;
  }
  return count;
}

// Listing 10: segmented plus-scan.
void seg_plus_scan_ui(int n, unsigned int* src, unsigned int* head_flags) {
  std::size_t vl;
  const std::size_t vlmax = vsetvlmax_e32m1();
  unsigned int carry = 0;
  vuint32m1_t x, y, flags, flags_slideup;
  vbool32_t mask, carry_mask;
  const vuint32m1_t vec_zero = vmv_v_x_u32m1(0, vlmax);
  const vuint32m1_t vec_one = vmv_v_x_u32m1(1, vlmax);
  for (; n > 0; n -= static_cast<int>(vl)) {
    vl = vsetvl_e32m1(static_cast<std::size_t>(n));
    x = vle32_v_u32m1(src, vl);
    flags = vle32_v_u32m1(head_flags, vl);
    mask = vmsne_vx_u32m1_b32(flags, 0, vl);
    carry_mask = rvvsvm::rvv::vmsbf(mask, vl);
    flags = vmv_s_x_u32m1(flags, 1, vl);
    for (std::size_t offset = 1; offset < vl; offset <<= 1) {
      mask = vmsne_vx_u32m1_b32(flags, 1, vl);
      y = vslideup_vx_u32m1(vec_zero, x, offset, vl);
      x = vadd_vv_u32m1_m(mask, x, x, y, vl);
      flags_slideup = vslideup_vx_u32m1(vec_one, flags, offset, vl);
      flags = vor_vv_u32m1(flags, flags_slideup, vl);
    }
    x = vadd_vx_u32m1_m(carry_mask, x, x, carry, vl);
    vse32(src, x, vl);
    carry = src[vl - 1];
    src += vl;
    head_flags += vl;
  }
}

}  // namespace

int main() {
  rvvsvm::rvv::Machine machine(rvvsvm::rvv::Machine::Config{.vlen_bits = 128});
  rvvsvm::rvv::MachineScope scope(machine);

  std::vector<unsigned int> a{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  p_add(static_cast<int>(a.size()), a.data(), 10);
  std::printf("Listing 4  p_add(+10):        ");
  for (auto v : a) std::printf("%u ", v);
  std::printf("\n");

  std::vector<unsigned int> s{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  plus_scan_ui(static_cast<int>(s.size()), s.data());
  std::printf("Listing 6  plus_scan:         ");
  for (auto v : s) std::printf("%u ", v);
  std::printf("\n");

  std::vector<unsigned int> f{1, 0, 1, 1, 0, 0, 1, 0, 1, 1};
  std::vector<unsigned int> e(f.size());
  const unsigned int ones = enumerate(static_cast<int>(f.size()), f.data(), e.data(), true);
  std::printf("Listing 8  enumerate(1s)=%u:   ", ones);
  for (auto v : e) std::printf("%u ", v);
  std::printf("\n");

  std::vector<unsigned int> g{3, 1, 4, 1, 5, 9, 2, 6, 5, 3};
  std::vector<unsigned int> h{1, 0, 0, 1, 0, 0, 1, 0, 0, 0};
  seg_plus_scan_ui(static_cast<int>(g.size()), g.data(), h.data());
  std::printf("Listing 10 seg_plus_scan:     ");
  for (auto v : g) std::printf("%u ", v);
  std::printf("\n");

  std::printf("\n%llu dynamic instructions total\n",
              static_cast<unsigned long long>(machine.counter().total()));
  return 0;
}
