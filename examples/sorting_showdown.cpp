// Sorting showdown: the paper's running example (split radix sort) against
// the segmented-scan quicksort and the sequential qsort baseline, across
// input distributions — uniform, nearly-sorted, and few-distinct-keys —
// reporting dynamic instruction counts for each.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <random>
#include <span>
#include <vector>

#include "apps/quicksort.hpp"
#include "apps/radix_sort.hpp"
#include "sim/report.hpp"
#include "svm/baseline/qsort.hpp"

namespace {

using namespace rvvsvm;

std::vector<std::uint32_t> make_input(const std::string& kind, std::size_t n) {
  std::mt19937 rng(99);
  std::vector<std::uint32_t> v(n);
  if (kind == "uniform") {
    for (auto& x : v) x = static_cast<std::uint32_t>(rng());
  } else if (kind == "nearly-sorted") {
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint32_t>(i);
    for (std::size_t k = 0; k < n / 20; ++k) {
      std::swap(v[rng() % n], v[rng() % n]);
    }
  } else {  // few-distinct
    for (auto& x : v) x = static_cast<std::uint32_t>(rng() % 8);
  }
  return v;
}

std::uint64_t measure(const std::vector<std::uint32_t>& input,
                      const std::function<void(std::span<std::uint32_t>)>& sorter,
                      std::vector<std::uint32_t>& out) {
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 1024});
  rvv::MachineScope scope(machine);
  out = input;
  const auto before = machine.counter().snapshot();
  sorter(std::span<std::uint32_t>(out));
  return (machine.counter().snapshot() - before).total();
}

}  // namespace

int main() {
  constexpr std::size_t kN = 20000;
  sim::print_section(std::cout, "Sorting showdown (N=20,000, VLEN=1024, LMUL=1)");
  sim::Table table({"distribution", "split_radix_sort", "scan_quicksort",
                    "qsort baseline"});

  for (const std::string kind : {"uniform", "nearly-sorted", "few-distinct"}) {
    const auto input = make_input(kind, kN);
    auto expect = input;
    std::sort(expect.begin(), expect.end());

    std::vector<std::uint32_t> a, b, c;
    const auto radix = measure(input, [](std::span<std::uint32_t> d) {
      apps::split_radix_sort<std::uint32_t>(d);
    }, a);
    const auto quick = measure(input, [](std::span<std::uint32_t> d) {
      apps::scan_quicksort<std::uint32_t>(d);
    }, b);
    const auto qsort = measure(input, [](std::span<std::uint32_t> d) {
      svm::baseline::qsort_u32(d);
    }, c);

    if (a != expect || b != expect || c != expect) {
      std::cerr << "FATAL: a sorter produced wrong output on " << kind << '\n';
      return 1;
    }
    table.add_row({kind, sim::format_count(radix), sim::format_count(quick),
                   sim::format_count(qsort)});
  }
  table.print(std::cout);
  std::cout << "\nRadix sort's count is distribution-oblivious (32 fixed "
               "passes); scan-quicksort benefits from few distinct keys "
               "(three-way partition retires whole segments per round).\n";
  return 0;
}
