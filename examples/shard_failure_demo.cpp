// Self-healing multi-hart execution, demonstrated end to end.
//
// A four-hart pool runs the paper's parallel plus-scan while a fault
// injector repeatedly kills one hart mid-shard.  Three policies are shown:
//
//   1. report-only (default): every shard failure is collected into a
//      structured EpochReport and thrown as ShardExecutionError;
//   2. retry: a one-shot crash is absorbed by re-running the shard on its
//      own hart from the collective's checkpoint;
//   3. inline fallback: a hart that fails persistently is bypassed by
//      re-executing its shards on the calling thread's rescue machine.
//
// In every recovered case the result is bit-identical to a fault-free run
// and the merged dynamic-instruction count is exactly the fault-free count:
// failed attempts are rolled back and reported separately as abandoned
// counts, never folded into the golden totals.
//
// Build: cmake --build build --target shard_failure_demo

#include <cstdint>
#include <iostream>
#include <numeric>
#include <span>
#include <vector>

#include "check/fault_injection.hpp"
#include "par/par.hpp"

namespace {

using rvvsvm::check::FaultInjector;

void print_report(const rvvsvm::par::EpochReport& report) {
  for (const auto& f : report.failures) {
    std::cout << "    shard " << f.shard << " on hart " << f.hart << ": "
              << f.message << "\n      attempts=" << f.attempts
              << (f.recovered ? " recovered" : " UNRECOVERED")
              << (f.inline_fallback ? " (inline fallback)" : "")
              << (f.timed_out ? " (watchdog timeout)" : "");
    if (f.has_context) {
      std::cout << " at " << rvvsvm::to_string(f.context);
    }
    std::cout << "\n";
  }
}

std::vector<std::uint32_t> input(std::size_t n) {
  std::vector<std::uint32_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

}  // namespace

int main() {
  using namespace rvvsvm;
  constexpr std::size_t kN = 4000;

  // A fault-free run fixes the golden result and instruction count.
  par::HartPool golden({.harts = 4, .shard_size = 128,
                        .machine = {.vlen_bits = 256}});
  std::vector<std::uint32_t> want = input(kN);
  par::plus_scan<std::uint32_t, 2>(golden, std::span<std::uint32_t>(want));
  const std::uint64_t golden_total = golden.merged_counts().total();
  std::cout << "fault-free: " << golden_total << " merged instructions\n\n";

  // 1. Report-only: no recovery channels armed, so a crashing shard turns
  //    into a thrown ShardExecutionError carrying the full report.
  {
    std::cout << "[1] report-only policy\n";
    par::HartPool pool({.harts = 4, .shard_size = 128,
                        .machine = {.vlen_bits = 256}});
    try {
      pool.for_shards(8, [](std::size_t shard) {
        if (shard % 3 == 1) {
          throw check::HartCrash("simulated crash on shard " +
                                 std::to_string(shard));
        }
      });
    } catch (const par::ShardExecutionError& e) {
      std::cout << "  caught: " << e.what() << "\n";
      print_report(e.report());
    }
  }

  // 2. Retry: a one-shot hart crash is replayed on the same hart.
  {
    std::cout << "\n[2] retry policy (max_retries=1)\n";
    par::HartPool pool({.harts = 4, .shard_size = 128,
                        .machine = {.vlen_bits = 256},
                        .recovery = {.max_retries = 1}});
    FaultInjector inj({.trap_at_instruction = 40, .crash = true});
    pool.machine(3).set_fault_hook(&inj);
    std::vector<std::uint32_t> data = input(kN);
    par::plus_scan<std::uint32_t, 2>(pool, std::span<std::uint32_t>(data));
    pool.machine(3).set_fault_hook(nullptr);
    std::cout << "  result " << (data == want ? "matches" : "DIVERGES")
              << " the fault-free run; merged counts "
              << (pool.merged_counts().total() == golden_total ? "exact"
                                                               : "DRIFTED")
              << "; abandoned (rolled-back) instructions: "
              << pool.abandoned_counts().total() << "\n";
  }

  // 3. Inline fallback: hart 0 fails every attempt, so its shards execute
  //    on the calling thread's rescue machine instead.
  {
    std::cout << "\n[3] inline fallback (persistent hart failure)\n";
    par::HartPool pool({.harts = 4, .shard_size = 128,
                        .machine = {.vlen_bits = 256},
                        .recovery = {.max_retries = 1, .fallback_inline = true}});
    FaultInjector inj(
        {.trap_at_instruction = 1, .crash = true, .persistent = true});
    pool.machine(0).set_fault_hook(&inj);
    std::vector<std::uint32_t> data = input(kN);
    par::plus_scan<std::uint32_t, 2>(pool, std::span<std::uint32_t>(data));
    pool.machine(0).set_fault_hook(nullptr);
    std::cout << "  result " << (data == want ? "matches" : "DIVERGES")
              << " the fault-free run; merged counts "
              << (pool.merged_counts().total() == golden_total ? "exact"
                                                               : "DRIFTED")
              << "\n  last epoch's failures:\n";
    print_report(pool.last_report());
  }

  return 0;
}
