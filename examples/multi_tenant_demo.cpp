// multi_tenant_demo — three tenants share one warm scan service.
//
//   alice    generous budget; her small scans coalesce into shared passes
//   bob      tight budget; admission cuts him off mid-session, uncharged
//   mallory  carries a persistent injected hart fault; her request fails
//            with a stable error code while everyone else's work completes
//
// Ends by printing each tenant's exact instruction bill and showing that
// the bills sum to the pool's merged ledger — chaos included.

#include <cstdint>
#include <future>
#include <iostream>
#include <numeric>
#include <vector>

#include "check/fault_injection.hpp"
#include "serve/service.hpp"

using rvvsvm::check::FaultInjector;
using rvvsvm::serve::Kind;
using rvvsvm::serve::Request;
using rvvsvm::serve::Response;
using rvvsvm::serve::ScanService;
using rvvsvm::serve::Value;

namespace {

constexpr rvvsvm::sim::TenantId kAlice = 1;
constexpr rvvsvm::sim::TenantId kBob = 2;
constexpr rvvsvm::sim::TenantId kMallory = 3;

Request scan_request(rvvsvm::sim::TenantId tenant, std::size_t n) {
  Request req;
  req.tenant = tenant;
  req.kind = Kind::kScan;
  req.data.resize(n);
  std::iota(req.data.begin(), req.data.end(), Value{1});
  return req;
}

const char* tenant_name(rvvsvm::sim::TenantId tenant) {
  switch (tenant) {
    case kAlice:
      return "alice";
    case kBob:
      return "bob";
    case kMallory:
      return "mallory";
    default:
      return "?";
  }
}

}  // namespace

int main() {
  ScanService::Config cfg;
  cfg.harts = 4;
  cfg.background = true;  // the daemon shape: a scheduler thread owns the pool
  ScanService svc(cfg);

  svc.set_budget(kAlice, 2'000'000);  // generous
  svc.set_budget(kBob, 150);          // tight: a couple of requests at most

  // A persistent injected fault rides on mallory's request: it fails the
  // hart attempt, the retry, and the inline fallback — unrecoverable by
  // design, so the service must fail her request alone.
  FaultInjector mallory_fault(
      {.trap_at_instruction = 4, .crash = true, .persistent = true});

  // Each tenant waits for a round's response before sending the next — the
  // budget gate compares a request's estimate against what the tenant has
  // already been billed, so bob runs out of budget mid-session.
  std::cout << "--- responses ---\n";
  const auto show = [](rvvsvm::sim::TenantId tenant, const Response& resp) {
    std::cout << "  " << tenant_name(tenant) << ": ";
    if (resp.ok()) {
      std::cout << "ok, " << resp.data.size() << " elements, billed "
                << resp.billed_total << " instructions"
                << (resp.coalesced ? " (coalesced)" : "") << "\n";
    } else {
      std::cout << "ERROR " << to_string(resp.error) << " — " << resp.message
                << " (billed " << resp.billed_total << ")\n";
    }
  };
  for (int round = 0; round < 6; ++round) {
    auto alice_fut =
        svc.submit(scan_request(kAlice, 24 + 8 * std::size_t(round)));
    auto bob_fut = svc.submit(scan_request(kBob, 32));
    show(kAlice, alice_fut.get());
    show(kBob, bob_fut.get());
  }
  Request poisoned = scan_request(kMallory, 48);
  poisoned.chaos_hook = &mallory_fault;
  show(kMallory, svc.submit(std::move(poisoned)).get());
  svc.stop();

  std::cout << "\n--- bills ---\n";
  std::uint64_t sum = 0;
  for (const auto tenant : svc.billing().tenants()) {
    const std::uint64_t billed = svc.billing().billed(tenant).total();
    sum += billed;
    std::cout << "  " << tenant_name(tenant) << ": " << billed
              << " instructions\n";
  }
  const std::uint64_t merged = svc.pool().merged_counts().total();
  const std::uint64_t abandoned = svc.pool().abandoned_counts().total();
  std::cout << "  sum of bills:      " << sum << "\n"
            << "  pool merged count: " << merged << "\n"
            << "  rolled back (not billed): " << abandoned << "\n";

  const ScanService::Stats stats = svc.stats();
  std::cout << "\n--- service ---\n"
            << "  completed " << stats.completed << ", failed " << stats.failed
            << ", budget-rejected " << stats.rejected_budget << "\n"
            << "  coalesced " << stats.coalesced_requests << " requests into "
            << stats.coalesced_batches << " envelope passes\n";

  if (sum != merged) {
    std::cout << "BUG: bills do not sum to the pool ledger\n";
    return 1;
  }
  if (stats.failed != 1) {
    std::cout << "BUG: expected exactly mallory's request to fail\n";
    return 1;
  }
  if (stats.rejected_budget == 0) {
    std::cout << "BUG: bob's tight budget never tripped admission\n";
    return 1;
  }
  std::cout << "\nbills are exact; the fault stayed inside one request.\n";
  return 0;
}
