// Parallel scan demo: run the same scan-vector-model kernels on a pool of
// emulated harts and show that the sharded engine is the *same function* as
// the single-hart kernels — bit-identical output, and a merged dynamic
// instruction count that does not depend on how many harts did the work.
//
//   $ ./examples/parallel_scan_demo
//
// This is the two-level (block-parallel) decomposition of Blelloch's scan:
// each hart scans its contiguous shards locally, hart 0 scans the shard
// totals, and every shard is then fixed up with its carry-in offset.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <numeric>
#include <vector>

#include "par/par.hpp"
#include "sim/report.hpp"
#include "svm/svm.hpp"

int main() {
  using namespace rvvsvm;
  constexpr std::size_t kN = 100000;

  // Reference: the single-hart kernel.
  std::vector<std::uint32_t> reference(kN);
  std::iota(reference.begin(), reference.end(), 1u);
  {
    rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 1024});
    rvv::MachineScope scope(machine);
    svm::plus_scan<std::uint32_t>(reference);
    std::cout << "single hart:  total insts = "
              << machine.counter().snapshot().total() << '\n';
  }

  // The same scan on 1, 2, 4 and 8 harts.  The shard size is fixed, so the
  // merged count is a constant of the *problem*, not of the machine that
  // happened to run it.
  for (const unsigned harts : {1u, 2u, 4u, 8u}) {
    par::HartPool pool({.harts = harts, .shard_size = 1 << 12,
                        .machine = {.vlen_bits = 1024}});
    std::vector<std::uint32_t> v(kN);
    std::iota(v.begin(), v.end(), 1u);
    par::plus_scan<std::uint32_t>(pool, v);

    const bool identical = (v == reference);
    const auto merged = pool.merged_counts();
    std::cout << harts << " hart" << (harts == 1 ? ": " : "s:")
              << "  merged insts = " << merged.total()
              << "  output " << (identical ? "bit-identical" : "DIFFERS!")
              << '\n';
    if (!identical) return 1;
  }

  // Per-hart attribution for the 4-hart case: sim::report renders the
  // per-hart snapshots plus the merged row.
  {
    par::HartPool pool({.harts = 4, .shard_size = 1 << 12,
                        .machine = {.vlen_bits = 1024}});
    std::vector<std::uint32_t> v(kN);
    std::iota(v.begin(), v.end(), 1u);
    par::plus_scan<std::uint32_t>(pool, v);
    std::cout << '\n';
    sim::print_hart_counts(std::cout, pool.per_hart_counts());
  }

  // A sharded radix sort rides the same machinery: per-shard histogram and
  // rank, cross-shard exclusive scan of bucket counts, disjoint scatter.
  {
    par::HartPool pool({.harts = 4, .shard_size = 1 << 12,
                        .machine = {.vlen_bits = 1024}});
    std::vector<std::uint32_t> keys(kN);
    for (std::size_t i = 0; i < kN; ++i)
      keys[i] = static_cast<std::uint32_t>((i * 2654435761u) & 0xffu);
    par::split_radix_sort<std::uint32_t>(pool, keys, /*key_bits=*/8);
    const bool sorted = std::is_sorted(keys.begin(), keys.end());
    std::cout << "\nsharded radix sort (8-bit keys): "
              << (sorted ? "sorted" : "NOT SORTED!") << ", merged insts = "
              << pool.merged_counts().total() << '\n';
    if (!sorted) return 1;
  }
  return 0;
}
