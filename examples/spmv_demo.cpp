// Sparse matrix-vector products on the scan vector model: builds a random
// sparse adjacency-like matrix in CSR form, runs y = A*x through the
// gather -> multiply -> segmented-scan pipeline, verifies against a scalar
// reference, and reports where the dynamic instructions went by class.
#include <cstdint>
#include <iostream>
#include <random>
#include <vector>

#include "apps/spmv.hpp"
#include "sim/report.hpp"

namespace {

using namespace rvvsvm;

apps::CsrMatrix<std::uint32_t> random_matrix(std::size_t rows, std::size_t cols,
                                             double density, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution occupied(density);
  apps::CsrMatrix<std::uint32_t> m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.push_back(0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (occupied(rng)) {
        m.col_idx.push_back(static_cast<std::uint32_t>(c));
        m.values.push_back(static_cast<std::uint32_t>(rng() % 100));
      }
    }
    m.row_ptr.push_back(static_cast<std::uint32_t>(m.col_idx.size()));
  }
  m.validate();
  return m;
}

}  // namespace

int main() {
  constexpr std::size_t kRows = 2000, kCols = 1500;
  const auto a = random_matrix(kRows, kCols, 0.01, 5);
  std::cout << "CSR matrix: " << kRows << " x " << kCols << ", nnz = " << a.nnz()
            << " (includes empty rows)\n";

  std::mt19937 rng(6);
  std::vector<std::uint32_t> x(kCols);
  for (auto& v : x) v = static_cast<std::uint32_t>(rng() % 1000);

  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 512});
  rvv::MachineScope scope(machine);
  std::vector<std::uint32_t> y(kRows);
  const auto before = machine.counter().snapshot();
  apps::spmv<std::uint32_t>(a, x, y);
  const auto delta = machine.counter().snapshot() - before;

  // Scalar reference (modular arithmetic, like the kernel).
  std::vector<std::uint32_t> ref(kRows, 0);
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::uint32_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      ref[r] += a.values[k] * x[a.col_idx[k]];
    }
  }
  if (ref != y) {
    std::cerr << "FATAL: spmv mismatch vs scalar reference\n";
    return 1;
  }
  std::cout << "verified against scalar reference ✓\n\n";

  std::cout << "dynamic instructions: " << delta << '\n'
            << "per nonzero: "
            << static_cast<double>(delta.total()) / static_cast<double>(a.nnz())
            << " (gather + multiply + segmented scan + tail gather)\n";
  return 0;
}
