// Line-of-sight over a synthetic terrain profile — Blelloch's classic
// max-scan application — with an ASCII rendering of which points the
// observer at the left edge can see.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "apps/line_of_sight.hpp"

int main() {
  using namespace rvvsvm;
  constexpr std::size_t kN = 72;

  // Rolling terrain with a tall ridge that shadows everything behind it.
  std::vector<std::int64_t> altitude(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double t = static_cast<double>(i);
    double h = 46.0 - t * 0.45 + 9.0 * std::sin(t / 5.0);
    if (i > 44 && i < 50) h += 22.0;  // the ridge
    altitude[i] = static_cast<std::int64_t>(h);
  }
  altitude[0] += 14;  // the observer stands on a tower


  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 256});
  rvv::MachineScope scope(machine);
  std::vector<std::int64_t> visible(kN);
  apps::line_of_sight(altitude, visible);

  // Render: rows are altitude bands, '#' visible terrain, '.' hidden.
  const std::int64_t top = *std::max_element(altitude.begin(), altitude.end());
  for (std::int64_t row = top; row >= 0; row -= 4) {
    for (std::size_t i = 0; i < kN; ++i) {
      if (altitude[i] >= row) {
        std::cout << (visible[i] != 0 ? '#' : '.');
      } else {
        std::cout << ' ';
      }
    }
    std::cout << '\n';
  }
  std::cout << "observer at column 0; '#' visible, '.' shadowed\n";

  std::size_t seen = 0;
  for (const auto v : visible) seen += v != 0 ? 1u : 0u;
  std::cout << seen << "/" << kN << " points visible; "
            << machine.counter().total() << " dynamic instructions\n";
  return 0;
}
