// Reproduces Table 4: segmented plus-scan (RVV) vs the sequential baseline.
// Thin formatter over the table library (tables::table4_seg_plus_scan()).
#include "tables/paper_tables.hpp"

int main(int argc, char** argv) {
  return rvvsvm::tables::table_main(argc, argv, "table4");
}
