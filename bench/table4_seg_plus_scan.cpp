// Reproduces Table 4: segmented plus-scan (RVV) vs the sequential baseline,
// VLEN = 1024, LMUL = 1, N = 10^2 .. 10^6, segments of expected length 100.
#include <iostream>

#include "bench/common.hpp"
#include "svm/baseline/baseline.hpp"
#include "svm/segmented.hpp"

namespace {

using namespace rvvsvm;

struct PaperRow {
  std::size_t n;
  std::uint64_t vec;
  std::uint64_t base;
};
constexpr PaperRow kPaper[] = {
    {100, 331, 1124},           {1000, 2639, 11024},     {10000, 25693, 110024},
    {100000, 256289, 1100024},  {1000000, 2562539, 11000024},
};

}  // namespace

int main() {
  sim::print_section(std::cout,
                     "Table 4: seg_plus_scan() vs sequential baseline — dynamic "
                     "instructions (VLEN=1024, LMUL=1)");
  sim::Table table({"N", "seg_plus_scan()", "seg_baseline()", "speedup",
                    "paper seg", "paper baseline", "paper speedup"});
  for (const auto& row : kPaper) {
    auto data = bench::random_u32(row.n, /*seed=*/17);
    const auto flags = bench::random_head_flags(row.n, /*avg_len=*/100, /*seed=*/18);

    auto vec_out = data;
    const std::uint64_t vec = bench::count_instructions(1024, [&] {
      svm::seg_plus_scan<std::uint32_t>(std::span<std::uint32_t>(vec_out),
                                        std::span<const std::uint32_t>(flags));
    });

    auto base_out = data;
    const std::uint64_t base = bench::count_instructions(1024, [&] {
      svm::baseline::seg_plus_scan<std::uint32_t>(std::span<std::uint32_t>(base_out),
                                                  std::span<const std::uint32_t>(flags));
    });

    if (vec_out != base_out) {
      std::cerr << "FATAL: seg_plus_scan outputs disagree at N=" << row.n << '\n';
      return 1;
    }

    table.add_row({std::to_string(row.n), sim::format_count(vec),
                   sim::format_count(base),
                   sim::format_ratio(static_cast<double>(base) / static_cast<double>(vec)),
                   sim::format_count(row.vec), sim::format_count(row.base),
                   sim::format_ratio(static_cast<double>(row.base) /
                                     static_cast<double>(row.vec))});
  }
  table.print(std::cout);
  std::cout << "\nShape check: segmented scan's speedup exceeds unsegmented "
               "scan's because its sequential baseline is heavier per element "
               "(11 vs 6 instructions) — the paper's 4.29x vs 2.29x ordering.\n";
  return 0;
}
