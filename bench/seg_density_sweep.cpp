// Extension bench: segmented plus-scan cost vs segmentation density.
//
// The paper evaluates one segment shape; this sweep checks a property the
// kernel design implies — the dynamic instruction count of seg_plus_scan is
// *independent* of where (and how many) segment boundaries fall, because
// the in-register segmented scan always runs its lg(vl) steps and masks do
// the rest.  The sequential baseline is also density-independent per
// element, so the speedup is flat.  (Contrast with per-segment-dispatch
// implementations whose cost explodes with many short segments.)
#include <iostream>

#include "bench/common.hpp"
#include "svm/baseline/baseline.hpp"
#include "svm/segmented.hpp"

namespace {

using namespace rvvsvm;
using T = std::uint32_t;

}  // namespace

int main() {
  constexpr std::size_t kN = 100000;
  sim::print_section(std::cout,
                     "Extension: seg_plus_scan vs segment density (N=10^5, "
                     "VLEN=1024, LMUL=1)");
  sim::Table table({"avg segment len", "segments", "seg_plus_scan", "baseline",
                    "speedup"});
  for (const std::size_t avg_len : {std::size_t{2}, std::size_t{10},
                                    std::size_t{100}, std::size_t{1000},
                                    std::size_t{100000}}) {
    const auto flags = bench::random_head_flags(kN, avg_len, 77);
    std::size_t segments = 0;
    for (const T f : flags) segments += f;

    auto data = bench::random_u32(kN, 78);
    const auto vec = bench::count_instructions(1024, [&] {
      svm::seg_plus_scan<T>(std::span<T>(data), std::span<const T>(flags));
    });
    auto base_data = bench::random_u32(kN, 78);
    const auto base = bench::count_instructions(1024, [&] {
      svm::baseline::seg_plus_scan<T>(std::span<T>(base_data),
                                      std::span<const T>(flags));
    });
    table.add_row({std::to_string(avg_len), std::to_string(segments),
                   sim::format_count(vec), sim::format_count(base),
                   sim::format_ratio(static_cast<double>(base) /
                                     static_cast<double>(vec))});
  }
  table.print(std::cout);
  std::cout << "\nExpected: identical counts on every row — the segmented scan "
               "is boundary-oblivious by construction.\n";
  return 0;
}
