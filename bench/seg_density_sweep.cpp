// Extension bench: segmented plus-scan cost vs segmentation density.  Thin
// formatter over the table library (tables::extension_seg_density()).
#include "tables/paper_tables.hpp"

int main(int argc, char** argv) {
  return rvvsvm::tables::table_main(argc, argv, "seg_density");
}
