#include "bench/bench_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <limits>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench/common.hpp"
#include "par/par.hpp"
#include "rvv/machine.hpp"
#include "svm/svm.hpp"

namespace rvvsvm::bench {

namespace {

using T = std::uint32_t;
using Clock = std::chrono::steady_clock;

struct Cell {
  std::string kernel;
  unsigned vlen = 0;
  unsigned lmul = 1;
  bool pooled = true;
  bool cached = true;
};

/// One kernel pass over pre-built workload buffers.  Kernels run in place:
/// the emulator's cost per element is what is being measured, and reusing
/// the working set keeps host cache effects out of the comparison.
struct Workload {
  std::vector<T> data;
  std::vector<T> flags;
  std::vector<T> index;
  std::vector<T> scratch;

  explicit Workload(std::size_t n)
      : data(random_u32(n, 3)),
        flags(random_head_flags(n, 100, 4)),
        index(reversal_permutation(n)),
        scratch(n) {}

  void run(const std::string& kernel) {
    if (kernel == "elementwise") {
      svm::p_add<T>(std::span<T>(data), 1u);
    } else if (kernel == "scan") {
      svm::plus_scan<T>(std::span<T>(data));
    } else if (kernel == "permute") {
      svm::permute<T>(std::span<const T>(data), std::span<T>(scratch),
                      std::span<const T>(index));
    } else if (kernel == "seg_scan_m8") {
      svm::seg_plus_scan<T, 8>(std::span<T>(data),
                               std::span<const T>(flags));
    } else {
      throw std::logic_error("bench_runner: unknown kernel " + kernel);
    }
  }
};

ThroughputResult run_cell(const Cell& cell, const SweepOptions& opt) {
  ThroughputResult r;
  r.kernel = cell.kernel;
  r.vlen = cell.vlen;
  r.lmul = cell.lmul;
  r.n = opt.n;
  r.pooled = cell.pooled;
  r.cached = cell.cached;

  Workload work(opt.n);
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = cell.vlen,
                                            .use_buffer_pool = cell.pooled,
                                            .use_exec_cache = cell.cached});
  rvv::MachineScope scope(machine);

  // Warmup pass doubles as the modeled-count measurement (counts are
  // deterministic per pass, so one bracketed pass suffices).
  const auto spills_before = machine.regfile()->spill_count();
  const auto reloads_before = machine.regfile()->reload_count();
  const auto before = machine.counter().snapshot();
  work.run(cell.kernel);
  r.instructions = (machine.counter().snapshot() - before).total();
  r.spills = machine.regfile()->spill_count() - spills_before;
  r.reloads = machine.regfile()->reload_count() - reloads_before;

  // Best of `repetitions` timed windows: host-side interference (scheduler
  // preemption, VM steal time) only ever slows a pass down, so the fastest
  // window is the least-contaminated estimate of the emulator's own cost.
  // Every window's raw sample is kept alongside the minimum so the JSON
  // records how noisy the selection was.
  const unsigned reps = opt.repetitions == 0 ? 1 : opt.repetitions;
  double best = std::numeric_limits<double>::infinity();
  r.window_seconds.reserve(reps);
  for (unsigned rep = 0; rep < reps; ++rep) {
    std::size_t passes = 0;
    const auto t0 = Clock::now();
    double elapsed = 0.0;
    do {
      work.run(cell.kernel);
      ++passes;
      elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
    } while (elapsed < opt.min_seconds);
    const double window = elapsed / static_cast<double>(passes);
    r.window_seconds.push_back(window);
    best = std::min(best, window);
  }
  double mean = 0.0;
  for (const double w : r.window_seconds) mean += w;
  mean /= static_cast<double>(r.window_seconds.size());
  for (const double w : r.window_seconds) {
    r.window_variance += (w - mean) * (w - mean);
  }
  r.window_variance /= static_cast<double>(r.window_seconds.size());

  r.seconds_per_pass = best;
  r.elems_per_sec = static_cast<double>(opt.n) / r.seconds_per_pass;
  r.trace_replays = machine.exec_cache().stats().trace_replays;
  r.ops_replayed = machine.exec_cache().stats().ops_replayed;
  return r;
}

unsigned worker_count(const SweepOptions& opt, std::size_t num_tasks) {
  unsigned n = opt.threads != 0 ? opt.threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (n > num_tasks) n = static_cast<unsigned>(num_tasks);
  return n;
}

std::string json_number(double v) {
  std::ostringstream os;
  os << std::setprecision(6) << v;
  return os.str();
}

}  // namespace

std::vector<ThroughputResult> run_throughput_sweep(const SweepOptions& opt) {
  static const char* kKernels[] = {"elementwise", "scan", "permute", "seg_scan_m8"};

  std::vector<Cell> cells;
  for (const char* kernel : kKernels) {
    const unsigned lmul = std::string(kernel) == "seg_scan_m8" ? 8u : 1u;
    for (const unsigned vlen : opt.vlens) {
      // unpooled+uncached = pre-pool emulator; pooled+uncached = interpreted
      // path (the cached cell's baseline); pooled+cached = full fast path.
      cells.push_back(Cell{kernel, vlen, lmul, /*pooled=*/false, /*cached=*/false});
      cells.push_back(Cell{kernel, vlen, lmul, /*pooled=*/true, /*cached=*/false});
      cells.push_back(Cell{kernel, vlen, lmul, /*pooled=*/true, /*cached=*/true});
    }
  }

  std::vector<ThroughputResult> results(cells.size());
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < cells.size();
         i = next.fetch_add(1)) {
      results[i] = run_cell(cells[i], opt);
    }
  };

  const unsigned nthreads = worker_count(opt, cells.size());
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (unsigned t = 0; t < nthreads; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  return results;
}

double pooled_speedup(const std::vector<ThroughputResult>& results,
                      const std::string& kernel, unsigned vlen) {
  const ThroughputResult* pooled = nullptr;
  const ThroughputResult* unpooled = nullptr;
  for (const auto& r : results) {
    if (r.kernel == kernel && r.vlen == vlen && !r.cached) {
      (r.pooled ? pooled : unpooled) = &r;
    }
  }
  if (pooled == nullptr || unpooled == nullptr || unpooled->elems_per_sec == 0.0) {
    return 0.0;
  }
  return pooled->elems_per_sec / unpooled->elems_per_sec;
}

double cached_speedup(const std::vector<ThroughputResult>& results,
                      const std::string& kernel, unsigned vlen) {
  const ThroughputResult* cached = nullptr;
  const ThroughputResult* interpreted = nullptr;
  for (const auto& r : results) {
    if (r.kernel == kernel && r.vlen == vlen && r.pooled) {
      (r.cached ? cached : interpreted) = &r;
    }
  }
  if (cached == nullptr || interpreted == nullptr ||
      interpreted->elems_per_sec == 0.0) {
    return 0.0;
  }
  return cached->elems_per_sec / interpreted->elems_per_sec;
}

void write_bench_json(const std::vector<ThroughputResult>& results,
                      const SweepOptions& opt, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("bench_runner: cannot write " + path);

  out << "{\n"
      << "  \"schema\": \"rvvsvm-bench-emulator\",\n"
      << "  \"schema_version\": " << kBenchSchemaVersion << ",\n"
      << "  \"n\": " << opt.n << ",\n"
      << "  \"threads\": " << worker_count(opt, results.size()) << ",\n"
      // Every cell of this sweep is a single-hart machine; shards do not
      // apply.  Recorded so the two BENCH_*.json files share one vocabulary.
      << "  \"harts\": 1,\n"
      << "  \"shard_size\": null,\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"kernel\": \"" << r.kernel << "\", \"vlen\": " << r.vlen
        << ", \"lmul\": " << r.lmul << ", \"n\": " << r.n
        << ", \"pooled\": " << (r.pooled ? "true" : "false")
        << ", \"cached\": " << (r.cached ? "true" : "false")
        << ", \"seconds_per_pass\": " << json_number(r.seconds_per_pass)
        << ", \"elems_per_sec\": " << json_number(r.elems_per_sec)
        << ", \"instructions\": " << r.instructions
        << ", \"spills\": " << r.spills << ", \"reloads\": " << r.reloads
        << ", \"trace_replays\": " << r.trace_replays
        << ", \"ops_replayed\": " << r.ops_replayed
        << ", \"window_seconds_per_pass\": [";
    for (std::size_t w = 0; w < r.window_seconds.size(); ++w) {
      out << (w == 0 ? "" : ", ") << json_number(r.window_seconds[w]);
    }
    out << "], \"window_variance\": " << json_number(r.window_variance)
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }

  // One entry per (kernel, vlen) pair, in result order.
  std::vector<std::pair<std::string, unsigned>> pairs;
  for (const auto& r : results) {
    const auto key = std::make_pair(r.kernel, r.vlen);
    bool seen = false;
    for (const auto& p : pairs) seen = seen || p == key;
    if (!seen) pairs.push_back(key);
  }
  out << "  ],\n"
      << "  \"speedup_pooled_vs_unpooled\": {\n";
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    out << "    \"" << pairs[i].first << "@vlen" << pairs[i].second
        << "\": " << json_number(pooled_speedup(results, pairs[i].first, pairs[i].second))
        << (i + 1 < pairs.size() ? "," : "") << "\n";
  }
  out << "  },\n"
      << "  \"speedup_cached_vs_interpreted\": {\n";
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    out << "    \"" << pairs[i].first << "@vlen" << pairs[i].second
        << "\": " << json_number(cached_speedup(results, pairs[i].first, pairs[i].second))
        << (i + 1 < pairs.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
}

namespace {

/// One pass of a parallel kernel over prebuilt buffers.  As in Workload,
/// kernels rerun on their own (mutated) output: split radix sort and the
/// scans are data-oblivious, so instruction streams and wall-clock per pass
/// are unaffected.
struct ParallelWorkload {
  std::vector<T> data;
  std::vector<T> flags;
  std::vector<T> scratch;

  explicit ParallelWorkload(std::size_t n)
      : data(random_u32(n, 3)), flags(random_head_flags(n, 2, 4)), scratch(n) {}

  void run(par::HartPool& pool, const std::string& kernel) {
    if (kernel == "scan") {
      par::plus_scan<T>(pool, std::span<T>(data));
    } else if (kernel == "scan_exclusive") {
      par::plus_scan_exclusive<T>(pool, std::span<T>(data));
    } else if (kernel == "reduce") {
      static_cast<void>(par::reduce<svm::PlusOp, T>(
          pool, std::span<const T>(data)));
    } else if (kernel == "split") {
      static_cast<void>(par::split<T>(pool, std::span<const T>(data),
                                      std::span<T>(scratch),
                                      std::span<const T>(flags)));
    } else if (kernel == "radix_sort8") {
      par::split_radix_sort<T>(pool, std::span<T>(data), /*key_bits=*/8);
    } else {
      throw std::logic_error("bench_runner: unknown parallel kernel " + kernel);
    }
  }
};

ParallelResult run_parallel_cell(const std::string& kernel, unsigned vlen,
                                 unsigned harts, const ParallelSweepOptions& opt) {
  ParallelResult r;
  r.kernel = kernel;
  r.vlen = vlen;
  r.harts = harts;
  r.shard_size = opt.shard_size;
  r.n = opt.n;

  ParallelWorkload work(opt.n);
  par::HartPool pool(par::HartPool::Config{
      .harts = harts,
      .shard_size = opt.shard_size,
      .machine = {.vlen_bits = vlen}});

  // Warmup pass doubles as the count measurement (counts are deterministic
  // per pass).
  pool.reset_counts();
  work.run(pool, kernel);
  const auto per_hart = pool.per_hart_counts();
  for (const auto& snap : per_hart) {
    r.per_hart_instructions.push_back(snap.total());
  }
  r.merged_instructions =
      sim::merge_counts(per_hart.data(), per_hart.size()).total();

  std::size_t passes = 0;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  do {
    work.run(pool, kernel);
    ++passes;
    elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  } while (elapsed < opt.min_seconds);

  r.seconds_per_pass = elapsed / static_cast<double>(passes);
  r.elems_per_sec = static_cast<double>(opt.n) / r.seconds_per_pass;
  return r;
}

}  // namespace

std::vector<ParallelResult> run_parallel_sweep(const ParallelSweepOptions& opt) {
  static const char* kKernels[] = {"scan", "scan_exclusive", "reduce", "split",
                                   "radix_sort8"};
  std::vector<ParallelResult> results;
  for (const char* kernel : kKernels) {
    for (const unsigned vlen : opt.vlens) {
      for (const unsigned harts : opt.hart_counts) {
        results.push_back(run_parallel_cell(kernel, vlen, harts, opt));
      }
    }
  }
  return results;
}

double parallel_speedup(const std::vector<ParallelResult>& results,
                        const std::string& kernel, unsigned vlen,
                        unsigned harts) {
  const ParallelResult* cell = nullptr;
  const ParallelResult* base = nullptr;
  for (const auto& r : results) {
    if (r.kernel == kernel && r.vlen == vlen) {
      if (r.harts == harts) cell = &r;
      if (r.harts == 1) base = &r;
    }
  }
  if (cell == nullptr || base == nullptr || base->elems_per_sec == 0.0) return 0.0;
  return cell->elems_per_sec / base->elems_per_sec;
}

void write_parallel_json(const std::vector<ParallelResult>& results,
                         const ParallelSweepOptions& opt,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("bench_runner: cannot write " + path);

  out << "{\n"
      << "  \"schema\": \"rvvsvm-bench-parallel\",\n"
      << "  \"schema_version\": " << kBenchSchemaVersion << ",\n"
      << "  \"n\": " << opt.n << ",\n"
      << "  \"shard_size\": " << opt.shard_size << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"kernel\": \"" << r.kernel << "\", \"vlen\": " << r.vlen
        << ", \"harts\": " << r.harts << ", \"shard_size\": " << r.shard_size
        << ", \"n\": " << r.n
        << ", \"seconds_per_pass\": " << json_number(r.seconds_per_pass)
        << ", \"elems_per_sec\": " << json_number(r.elems_per_sec)
        << ", \"merged_instructions\": " << r.merged_instructions
        << ", \"per_hart_instructions\": [";
    for (std::size_t h = 0; h < r.per_hart_instructions.size(); ++h) {
      out << (h == 0 ? "" : ", ") << r.per_hart_instructions[h];
    }
    out << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"speedup_vs_1_hart\": {\n";

  std::vector<std::string> keys;
  std::vector<double> values;
  for (const auto& r : results) {
    if (r.harts == 1) continue;
    keys.push_back(r.kernel + "@vlen" + std::to_string(r.vlen) + "@harts" +
                   std::to_string(r.harts));
    values.push_back(parallel_speedup(results, r.kernel, r.vlen, r.harts));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    out << "    \"" << keys[i] << "\": " << json_number(values[i])
        << (i + 1 < keys.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
}

void print_parallel_summary(const std::vector<ParallelResult>& results) {
  std::cout << std::left << std::setw(16) << "kernel" << std::right
            << std::setw(6) << "vlen" << std::setw(7) << "harts"
            << std::setw(12) << "shard" << std::setw(16) << "Melems/s"
            << std::setw(14) << "merged insts" << std::setw(10) << "vs 1" << '\n';
  for (const auto& r : results) {
    std::cout << std::left << std::setw(16) << r.kernel << std::right
              << std::setw(6) << r.vlen << std::setw(7) << r.harts
              << std::setw(12) << r.shard_size << std::setw(16) << std::fixed
              << std::setprecision(3) << r.elems_per_sec / 1e6 << std::setw(14)
              << r.merged_instructions << std::setw(9) << std::setprecision(2)
              << parallel_speedup(results, r.kernel, r.vlen, r.harts) << "x\n";
  }
}

void print_summary(const std::vector<ThroughputResult>& results) {
  std::cout << std::left << std::setw(14) << "kernel" << std::right
            << std::setw(6) << "vlen" << std::setw(6) << "lmul"
            << std::setw(10) << "pooled" << std::setw(10) << "cached"
            << std::setw(16) << "Melems/s" << std::setw(12) << "insts"
            << std::setw(12) << "replays" << '\n';
  for (const auto& r : results) {
    std::cout << std::left << std::setw(14) << r.kernel << std::right
              << std::setw(6) << r.vlen << std::setw(6) << r.lmul
              << std::setw(10) << (r.pooled ? "yes" : "no")
              << std::setw(10) << (r.cached ? "yes" : "no") << std::setw(16)
              << std::fixed << std::setprecision(3) << r.elems_per_sec / 1e6
              << std::setw(12) << r.instructions
              << std::setw(12) << r.trace_replays << '\n';
  }
  std::vector<std::pair<std::string, unsigned>> pairs;
  for (const auto& r : results) {
    const auto key = std::make_pair(r.kernel, r.vlen);
    bool seen = false;
    for (const auto& p : pairs) seen = seen || p == key;
    if (!seen) pairs.push_back(key);
  }
  std::cout << "\npooled vs unpooled speedup (elements/sec, cache off):\n";
  for (const auto& [kernel, vlen] : pairs) {
    std::cout << "  " << std::left << std::setw(14) << kernel << " vlen="
              << std::setw(5) << vlen << std::fixed << std::setprecision(2)
              << pooled_speedup(results, kernel, vlen) << "x\n";
  }
  std::cout << "\nexec cache vs interpreted speedup (elements/sec, pool on):\n";
  for (const auto& [kernel, vlen] : pairs) {
    std::cout << "  " << std::left << std::setw(14) << kernel << " vlen="
              << std::setw(5) << vlen << std::fixed << std::setprecision(2)
              << cached_speedup(results, kernel, vlen) << "x\n";
  }
}

}  // namespace rvvsvm::bench
