#include "bench/bench_runner.hpp"

#include <atomic>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench/common.hpp"
#include "rvv/machine.hpp"
#include "svm/svm.hpp"

namespace rvvsvm::bench {

namespace {

using T = std::uint32_t;
using Clock = std::chrono::steady_clock;

struct Cell {
  std::string kernel;
  unsigned vlen = 0;
  unsigned lmul = 1;
  bool pooled = true;
};

/// One kernel pass over pre-built workload buffers.  Kernels run in place:
/// the emulator's cost per element is what is being measured, and reusing
/// the working set keeps host cache effects out of the comparison.
struct Workload {
  std::vector<T> data;
  std::vector<T> flags;
  std::vector<T> index;
  std::vector<T> scratch;

  explicit Workload(std::size_t n)
      : data(random_u32(n, 3)),
        flags(random_head_flags(n, 100, 4)),
        index(reversal_permutation(n)),
        scratch(n) {}

  void run(const std::string& kernel) {
    if (kernel == "elementwise") {
      svm::p_add<T>(std::span<T>(data), 1u);
    } else if (kernel == "scan") {
      svm::plus_scan<T>(std::span<T>(data));
    } else if (kernel == "permute") {
      svm::permute<T>(std::span<const T>(data), std::span<T>(scratch),
                      std::span<const T>(index));
    } else if (kernel == "seg_scan_m8") {
      svm::seg_plus_scan<T, 8>(std::span<T>(data),
                               std::span<const T>(flags));
    } else {
      throw std::logic_error("bench_runner: unknown kernel " + kernel);
    }
  }
};

ThroughputResult run_cell(const Cell& cell, const SweepOptions& opt) {
  ThroughputResult r;
  r.kernel = cell.kernel;
  r.vlen = cell.vlen;
  r.lmul = cell.lmul;
  r.n = opt.n;
  r.pooled = cell.pooled;

  Workload work(opt.n);
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = cell.vlen,
                                            .use_buffer_pool = cell.pooled});
  rvv::MachineScope scope(machine);

  // Warmup pass doubles as the modeled-count measurement (counts are
  // deterministic per pass, so one bracketed pass suffices).
  const auto spills_before = machine.regfile()->spill_count();
  const auto reloads_before = machine.regfile()->reload_count();
  const auto before = machine.counter().snapshot();
  work.run(cell.kernel);
  r.instructions = (machine.counter().snapshot() - before).total();
  r.spills = machine.regfile()->spill_count() - spills_before;
  r.reloads = machine.regfile()->reload_count() - reloads_before;

  std::size_t passes = 0;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  do {
    work.run(cell.kernel);
    ++passes;
    elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  } while (elapsed < opt.min_seconds);

  r.seconds_per_pass = elapsed / static_cast<double>(passes);
  r.elems_per_sec = static_cast<double>(opt.n) / r.seconds_per_pass;
  return r;
}

unsigned worker_count(const SweepOptions& opt, std::size_t num_tasks) {
  unsigned n = opt.threads != 0 ? opt.threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (n > num_tasks) n = static_cast<unsigned>(num_tasks);
  return n;
}

std::string json_number(double v) {
  std::ostringstream os;
  os << std::setprecision(6) << v;
  return os.str();
}

}  // namespace

std::vector<ThroughputResult> run_throughput_sweep(const SweepOptions& opt) {
  static const char* kKernels[] = {"elementwise", "scan", "permute", "seg_scan_m8"};

  std::vector<Cell> cells;
  for (const char* kernel : kKernels) {
    const unsigned lmul = std::string(kernel) == "seg_scan_m8" ? 8u : 1u;
    for (const unsigned vlen : opt.vlens) {
      for (const bool pooled : {false, true}) {
        cells.push_back(Cell{kernel, vlen, lmul, pooled});
      }
    }
  }

  std::vector<ThroughputResult> results(cells.size());
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < cells.size();
         i = next.fetch_add(1)) {
      results[i] = run_cell(cells[i], opt);
    }
  };

  const unsigned nthreads = worker_count(opt, cells.size());
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (unsigned t = 0; t < nthreads; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  return results;
}

double pooled_speedup(const std::vector<ThroughputResult>& results,
                      const std::string& kernel, unsigned vlen) {
  const ThroughputResult* pooled = nullptr;
  const ThroughputResult* unpooled = nullptr;
  for (const auto& r : results) {
    if (r.kernel == kernel && r.vlen == vlen) {
      (r.pooled ? pooled : unpooled) = &r;
    }
  }
  if (pooled == nullptr || unpooled == nullptr || unpooled->elems_per_sec == 0.0) {
    return 0.0;
  }
  return pooled->elems_per_sec / unpooled->elems_per_sec;
}

void write_bench_json(const std::vector<ThroughputResult>& results,
                      const SweepOptions& opt, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("bench_runner: cannot write " + path);

  out << "{\n"
      << "  \"schema\": \"rvvsvm-bench-emulator-v1\",\n"
      << "  \"n\": " << opt.n << ",\n"
      << "  \"threads\": " << worker_count(opt, results.size()) << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"kernel\": \"" << r.kernel << "\", \"vlen\": " << r.vlen
        << ", \"lmul\": " << r.lmul << ", \"n\": " << r.n
        << ", \"pooled\": " << (r.pooled ? "true" : "false")
        << ", \"seconds_per_pass\": " << json_number(r.seconds_per_pass)
        << ", \"elems_per_sec\": " << json_number(r.elems_per_sec)
        << ", \"instructions\": " << r.instructions
        << ", \"spills\": " << r.spills << ", \"reloads\": " << r.reloads
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"speedup_pooled_vs_unpooled\": {\n";

  // One entry per (kernel, vlen) pair, in result order.
  std::vector<std::pair<std::string, unsigned>> pairs;
  for (const auto& r : results) {
    const auto key = std::make_pair(r.kernel, r.vlen);
    bool seen = false;
    for (const auto& p : pairs) seen = seen || p == key;
    if (!seen) pairs.push_back(key);
  }
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    out << "    \"" << pairs[i].first << "@vlen" << pairs[i].second
        << "\": " << json_number(pooled_speedup(results, pairs[i].first, pairs[i].second))
        << (i + 1 < pairs.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
}

void print_summary(const std::vector<ThroughputResult>& results) {
  std::cout << std::left << std::setw(14) << "kernel" << std::right
            << std::setw(6) << "vlen" << std::setw(6) << "lmul"
            << std::setw(10) << "pooled" << std::setw(16) << "Melems/s"
            << std::setw(12) << "insts" << '\n';
  for (const auto& r : results) {
    std::cout << std::left << std::setw(14) << r.kernel << std::right
              << std::setw(6) << r.vlen << std::setw(6) << r.lmul
              << std::setw(10) << (r.pooled ? "yes" : "no") << std::setw(16)
              << std::fixed << std::setprecision(3) << r.elems_per_sec / 1e6
              << std::setw(12) << r.instructions << '\n';
  }
  std::cout << "\npooled vs unpooled speedup (elements/sec):\n";
  std::vector<std::pair<std::string, unsigned>> pairs;
  for (const auto& r : results) {
    const auto key = std::make_pair(r.kernel, r.vlen);
    bool seen = false;
    for (const auto& p : pairs) seen = seen || p == key;
    if (!seen) pairs.push_back(key);
  }
  for (const auto& [kernel, vlen] : pairs) {
    std::cout << "  " << std::left << std::setw(14) << kernel << " vlen="
              << std::setw(5) << vlen << std::fixed << std::setprecision(2)
              << pooled_speedup(results, kernel, vlen) << "x\n";
  }
}

}  // namespace rvvsvm::bench
