// Reproduces Table 7 and Figure 5: seg_plus_scan and p_add across VLEN.
// Thin formatter over the table library (tables::table7_vlen_sweep();
// Figure 5 is derived at render time).
#include "tables/paper_tables.hpp"

int main(int argc, char** argv) {
  return rvvsvm::tables::table_main(argc, argv, "table7");
}
