// Reproduces Table 7 and Figure 5: dynamic instruction counts of segmented
// plus-scan and p-add across VLEN in {128, 256, 512, 1024} at N = 10^4,
// LMUL = 1, and the speedup-vs-VLEN=128 scalability series.
//
// Figure 5's point: p-add scales almost ideally with VLEN (speedup ~
// VLEN/128) while scan-class kernels scale sublinearly because the
// in-register scan needs lg(vl) extra steps per block.
#include <array>
#include <iostream>

#include "bench/common.hpp"
#include "svm/elementwise.hpp"
#include "svm/segmented.hpp"

namespace {

using namespace rvvsvm;

constexpr std::array<unsigned, 4> kVlens{128, 256, 512, 1024};
constexpr std::size_t kN = 10000;

struct PaperRow {
  unsigned vlen;
  std::uint64_t seg_scan;
  std::uint64_t p_add;
};
constexpr PaperRow kPaper[] = {
    {128, 115039, 22534},
    {256, 72539, 11284},
    {512, 43789, 5659},
    {1024, 25693, 2851},
};

}  // namespace

int main() {
  sim::print_section(std::cout,
                     "Table 7: instruction count over VLEN for seg_plus_scan and "
                     "p_add (N=10^4, LMUL=1)");
  sim::Table t7({"vlen", "seg_plus_scan", "p_add", "paper seg", "paper p_add"});

  std::array<std::uint64_t, 4> seg{};
  std::array<std::uint64_t, 4> padd{};
  const auto flags = bench::random_head_flags(kN, /*avg_len=*/100, /*seed=*/18);

  for (std::size_t i = 0; i < kVlens.size(); ++i) {
    auto data = bench::random_u32(kN, /*seed=*/17);
    seg[i] = bench::count_instructions(kVlens[i], [&] {
      svm::seg_plus_scan<std::uint32_t>(std::span<std::uint32_t>(data),
                                        std::span<const std::uint32_t>(flags));
    });
    auto data2 = bench::random_u32(kN, /*seed=*/17);
    padd[i] = bench::count_instructions(kVlens[i], [&] {
      svm::p_add<std::uint32_t>(std::span<std::uint32_t>(data2), 123u);
    });
    t7.add_row({std::to_string(kVlens[i]), sim::format_count(seg[i]),
                sim::format_count(padd[i]), sim::format_count(kPaper[i].seg_scan),
                sim::format_count(kPaper[i].p_add)});
  }
  t7.print(std::cout);

  sim::print_section(std::cout,
                     "Figure 5: speedup vs VLEN=128 (ideal = vlen/128)");
  sim::Table fig({"vlen", "ideal", "p_add (ours)", "p_add (paper)",
                  "seg_scan (ours)", "seg_scan (paper)"});
  for (std::size_t i = 0; i < kVlens.size(); ++i) {
    const double ideal = static_cast<double>(kVlens[i]) / 128.0;
    const double ours_padd = static_cast<double>(padd[0]) / static_cast<double>(padd[i]);
    const double paper_padd = static_cast<double>(kPaper[0].p_add) /
                              static_cast<double>(kPaper[i].p_add);
    const double ours_seg = static_cast<double>(seg[0]) / static_cast<double>(seg[i]);
    const double paper_seg = static_cast<double>(kPaper[0].seg_scan) /
                             static_cast<double>(kPaper[i].seg_scan);
    fig.add_row({std::to_string(kVlens[i]), sim::format_ratio(ideal),
                 sim::format_ratio(ours_padd), sim::format_ratio(paper_padd),
                 sim::format_ratio(ours_seg), sim::format_ratio(paper_seg)});
  }
  fig.print(std::cout);
  std::cout << "\nShape check: p-add tracks the ideal line; segmented scan "
               "saturates well below it (paper: 4.48x at VLEN=1024 vs ideal 8x).\n";
  return 0;
}
