// Extension bench (not a paper table): carry-lookahead scan addition vs
// sequential ripple carry, across limb counts and LMUL — the same
// vector-vs-scalar story as the paper's Tables 2-4, applied to Blelloch's
// binary-addition scan example with a non-commutative operator.
#include <iostream>

#include "apps/bignum.hpp"
#include "bench/common.hpp"

namespace {

using namespace rvvsvm;

template <unsigned LMUL>
std::uint64_t scan_add(const std::vector<std::uint32_t>& a,
                       const std::vector<std::uint32_t>& b,
                       std::vector<std::uint32_t>& out, std::uint32_t& carry) {
  return bench::count_instructions(1024, [&] {
    carry = apps::bignum_add<LMUL>(std::span<const std::uint32_t>(a),
                                   std::span<const std::uint32_t>(b),
                                   std::span<std::uint32_t>(out));
  });
}

}  // namespace

int main() {
  sim::print_section(std::cout,
                     "Extension: bignum add — carry-lookahead scan vs ripple "
                     "carry (VLEN=1024)");
  sim::Table table({"limbs", "ripple (seq)", "scan LMUL=1", "scan LMUL=4",
                    "speedup (best)"});
  for (const std::size_t n : bench::kSizes) {
    const auto a = bench::random_u32(n, 41);
    const auto b = bench::random_u32(n, 42);
    std::vector<std::uint32_t> out_ref(n), out1(n), out4(n);

    std::uint32_t carry_ref = 0;
    const auto ripple = bench::count_instructions(1024, [&] {
      carry_ref = apps::bignum_add_baseline(std::span<const std::uint32_t>(a),
                                            std::span<const std::uint32_t>(b),
                                            std::span<std::uint32_t>(out_ref));
    });

    std::uint32_t c1 = 0, c4 = 0;
    const auto s1 = scan_add<1>(a, b, out1, c1);
    const auto s4 = scan_add<4>(a, b, out4, c4);
    if (out1 != out_ref || out4 != out_ref || c1 != carry_ref || c4 != carry_ref) {
      std::cerr << "FATAL: bignum results disagree at n=" << n << '\n';
      return 1;
    }
    const auto best = std::min(s1, s4);
    table.add_row({std::to_string(n), sim::format_count(ripple),
                   sim::format_count(s1), sim::format_count(s4),
                   sim::format_ratio(static_cast<double>(ripple) /
                                     static_cast<double>(best))});
  }
  table.print(std::cout);
  std::cout << "\nThe carry semigroup is non-commutative, so this bench also "
               "validates the generic scan kernels' operand-orientation "
               "contract end to end.\n";
  return 0;
}
