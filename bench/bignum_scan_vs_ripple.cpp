// Extension bench: carry-lookahead scan addition vs sequential ripple
// carry.  Thin formatter over the table library (tables::extension_bignum()).
#include "tables/paper_tables.hpp"

int main(int argc, char** argv) {
  return rvvsvm::tables::table_main(argc, argv, "bignum");
}
