// Autotuner sweep and acceptance gate: the five core kernels across the
// full VLEN × n grid, each cell measured three ways — tuned (a fresh
// AutoTuner per cell, so every cell pays its own measurement miss), pinned
// always-LMUL=1, and pinned always-LMUL=8 — plus the full static LMUL row
// for reference.
//
// Two checks run after the sweep:
//
//   * per cell, the tuned count must not lose to the best static LMUL
//     (exact at power-of-two n, where the bucket representative equals n;
//     within --tolerance elsewhere, where the winner was measured at the
//     bucket edge below n);
//
//   * over the grid, the geometric-mean improvement of tuned over
//     always-LMUL=1 AND over always-LMUL=8 must reach --min-improvement —
//     the PR gate that the tuner beats both static extremes overall.
//
// --fit refits the offline cost model (base, per_block, per_block_log per
// shape × LMUL, least squares over the static grid) and writes it as the
// JSON src/tune/cost_model.json is regenerated from.
//
// Usage: autotune_sweep [--json FILE] [--min-improvement F] [--tolerance F]
//                       [--smoke] [--fit FILE]
#include <array>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "par/par.hpp"
#include "svm/svm.hpp"
#include "tune/autotuner.hpp"
#include "tune/cost_model.hpp"

namespace {

using namespace rvvsvm;
using T = std::uint32_t;

std::vector<T> random_u32(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(rng());
  return v;
}

std::vector<T> head_flags(std::size_t n, std::size_t avg_len, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution head(1.0 / static_cast<double>(avg_len));
  std::vector<T> flags(n, 0);
  if (n > 0) flags[0] = 1;
  for (std::size_t i = 1; i < n; ++i) flags[i] = head(rng) ? 1u : 0u;
  return flags;
}

std::vector<T> bit_flags(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<T> flags(n);
  for (auto& f : flags) f = rng() & 1u;
  return flags;
}

/// One kernel of the sweep: run(n, lmul_or_0) executes the workload at a
/// pinned LMUL, or tuned when lmul == 0.
struct Kernel {
  const char* name;
  tune::Shape shape;
  std::function<void(std::size_t n, unsigned lmul)> run;
};

template <class Fn>
void at_lmul(unsigned lmul, Fn&& fn) {
  // lmul == 0 is the tuned default (svm::kTunedLmul).
  switch (lmul) {
    case 1: fn(std::integral_constant<unsigned, 1>{}); break;
    case 2: fn(std::integral_constant<unsigned, 2>{}); break;
    case 4: fn(std::integral_constant<unsigned, 4>{}); break;
    case 8: fn(std::integral_constant<unsigned, 8>{}); break;
    default: fn(std::integral_constant<unsigned, svm::kTunedLmul>{}); break;
  }
}

std::vector<Kernel> make_kernels() {
  std::vector<Kernel> kernels;
  kernels.push_back({"p_add", tune::Shape::kElementwiseVx, [](std::size_t n, unsigned lmul) {
    auto data = random_u32(n, 11);
    at_lmul(lmul, [&](auto lc) {
      svm::p_add<T, decltype(lc)::value>(std::span<T>(data), 123u);
    });
  }});
  kernels.push_back({"plus_scan", tune::Shape::kScanInclusive, [](std::size_t n, unsigned lmul) {
    auto data = random_u32(n, 12);
    at_lmul(lmul, [&](auto lc) {
      svm::plus_scan<T, decltype(lc)::value>(std::span<T>(data));
    });
  }});
  kernels.push_back({"reduce", tune::Shape::kReduce, [](std::size_t n, unsigned lmul) {
    const auto data = random_u32(n, 13);
    at_lmul(lmul, [&](auto lc) {
      static_cast<void>(svm::reduce<svm::PlusOp, T, decltype(lc)::value>(
          std::span<const T>(data)));
    });
  }});
  kernels.push_back({"seg_plus_scan", tune::Shape::kSegScanInclusive,
                     [](std::size_t n, unsigned lmul) {
    auto data = random_u32(n, 14);
    const auto flags = head_flags(n, 100, 15);
    at_lmul(lmul, [&](auto lc) {
      svm::seg_plus_scan<T, decltype(lc)::value>(std::span<T>(data),
                                                 std::span<const T>(flags));
    });
  }});
  kernels.push_back({"split", tune::Shape::kSplit, [](std::size_t n, unsigned lmul) {
    const auto src = random_u32(n, 16);
    const auto flags = bit_flags(n, 17);
    std::vector<T> dst(n);
    at_lmul(lmul, [&](auto lc) {
      static_cast<void>(svm::split<T, decltype(lc)::value>(
          std::span<const T>(src), std::span<T>(dst), std::span<const T>(flags)));
    });
  }});
  return kernels;
}

struct Cell {
  std::string kernel;
  tune::Shape shape;
  unsigned vlen = 0;
  std::size_t n = 0;
  std::uint64_t tuned = 0;
  unsigned winner = 0;
  std::array<std::uint64_t, 4> fixed{};  // LMUL 1, 2, 4, 8
  [[nodiscard]] std::uint64_t best_static() const {
    std::uint64_t best = fixed[0];
    for (const auto c : fixed) best = c < best ? c : best;
    return best;
  }
};

std::uint64_t count_run(unsigned vlen, const std::function<void()>& body) {
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = vlen});
  rvv::MachineScope scope(machine);
  body();
  return machine.counter().total();
}

double geomean_ratio(const std::vector<Cell>& cells,
                     const std::function<double(const Cell&)>& ratio) {
  double log_sum = 0.0;
  for (const auto& c : cells) log_sum += std::log(ratio(c));
  return std::exp(log_sum / static_cast<double>(cells.size()));
}

// --- cost-model refit -------------------------------------------------------

/// Least squares of count ~ base + blocks*per_block + blocks*log_steps*
/// per_block_log over this sweep's static cells for one (shape, lmul).
tune::Coefficients fit_one(const std::vector<Cell>& cells, tune::Shape shape,
                           unsigned lmul) {
  const std::size_t slot = tune::CostModel::lmul_slot(lmul);
  // Normal equations for the 3-parameter linear model.
  std::array<std::array<double, 3>, 3> a{};
  std::array<double, 3> b{};
  std::size_t samples = 0;
  for (const auto& c : cells) {
    if (c.shape != shape) continue;
    const std::size_t vlmax = rvv::vlmax_for(c.vlen, 32, lmul);
    const double blocks =
        static_cast<double>((c.n + vlmax - 1) / (vlmax == 0 ? 1 : vlmax));
    const std::size_t vl = c.n < vlmax ? c.n : vlmax;
    unsigned log_steps = 0;
    for (std::size_t offset = 1; offset < vl; offset <<= 1) ++log_steps;
    const std::array<double, 3> x{1.0, blocks, blocks * static_cast<double>(log_steps)};
    const double y = static_cast<double>(c.fixed[slot]);
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) a[i][j] += x[i] * x[j];
      b[i] += x[i] * y;
    }
    ++samples;
  }
  if (samples < 3) return {};
  // Gaussian elimination with partial pivoting on the 3x3 system.
  for (std::size_t col = 0; col < 3; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < 3; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    if (std::fabs(a[col][col]) < 1e-12) return {};
    for (std::size_t row = 0; row < 3; ++row) {
      if (row == col) continue;
      const double f = a[row][col] / a[col][col];
      for (std::size_t j = 0; j < 3; ++j) a[row][j] -= f * a[col][j];
      b[row] -= f * b[col];
    }
  }
  return tune::Coefficients{.base = b[0] / a[0][0],
                            .per_block = b[1] / a[1][1],
                            .per_block_log = b[2] / a[2][2],
                            .valid = true};
}

void write_json(const std::string& path, const std::vector<Cell>& cells,
                double vs_l1, double vs_l8, double vs_best,
                const tune::Stats& stats) {
  std::ofstream os(path, std::ios::trunc);
  os << "{\n  \"schema_version\": 1,\n  \"element_type\": \"u32\",\n"
     << "  \"summary\": {\n"
     << "    \"geomean_improvement_vs_lmul1\": " << (vs_l1 - 1.0) << ",\n"
     << "    \"geomean_improvement_vs_lmul8\": " << (vs_l8 - 1.0) << ",\n"
     << "    \"geomean_tuned_over_best_static\": " << vs_best << ",\n"
     << "    \"tuner_misses\": " << stats.misses << ",\n"
     << "    \"tuner_measurements\": " << stats.measurements << ",\n"
     << "    \"model_pruned_candidates\": " << stats.model_pruned << "\n"
     << "  },\n  \"cells\": [";
  bool first = true;
  for (const auto& c : cells) {
    os << (first ? "" : ",") << "\n    {\"kernel\": \"" << c.kernel
       << "\", \"vlen\": " << c.vlen << ", \"n\": " << c.n
       << ", \"tuned\": " << c.tuned << ", \"winner_lmul\": " << c.winner
       << ", \"lmul1\": " << c.fixed[0] << ", \"lmul2\": " << c.fixed[1]
       << ", \"lmul4\": " << c.fixed[2] << ", \"lmul8\": " << c.fixed[3] << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_autotune.json";
  std::string fit_path;
  double min_improvement = 0.0;
  double tolerance = 0.05;
  std::vector<unsigned> vlens{128, 256, 512, 1024};
  std::vector<std::size_t> sizes{64, 256, 1024, 4096, 10000, 16384, 65536};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--fit" && i + 1 < argc) {
      fit_path = argv[++i];
    } else if (arg == "--min-improvement" && i + 1 < argc) {
      min_improvement = std::stod(argv[++i]);
    } else if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::stod(argv[++i]);
    } else if (arg == "--smoke") {
      vlens = {128, 1024};
      sizes = {64, 1024, 10000};
    } else {
      std::cerr << "usage: autotune_sweep [--json FILE] [--min-improvement F]\n"
                   "                      [--tolerance F] [--smoke] [--fit FILE]\n";
      return 2;
    }
  }

  const auto kernels = make_kernels();
  std::vector<Cell> cells;
  tune::Stats total_stats;
  int failures = 0;

  for (const auto& kernel : kernels) {
    for (const unsigned vlen : vlens) {
      for (const std::size_t n : sizes) {
        Cell cell;
        cell.kernel = kernel.name;
        cell.shape = kernel.shape;
        cell.vlen = vlen;
        cell.n = n;
        for (const unsigned lmul : {1u, 2u, 4u, 8u}) {
          cell.fixed[tune::CostModel::lmul_slot(lmul)] =
              count_run(vlen, [&] { kernel.run(n, lmul); });
        }
        // A fresh tuner per cell: the tuned count includes nothing from
        // other cells, and the cell's miss measures on scratch machines that
        // charge nothing to the measured run.
        tune::AutoTuner tuner;
        {
          tune::TunerScope scope(tuner);
          cell.tuned = count_run(vlen, [&] { kernel.run(n, 0); });
        }
        const auto winners = tuner.winners();
        cell.winner = winners.size() == 1 ? winners[0].lmul : 0;
        const tune::Stats s = tuner.stats();
        total_stats.misses += s.misses;
        total_stats.measurements += s.measurements;
        total_stats.model_pruned += s.model_pruned;

        const bool pow2 = (n & (n - 1)) == 0;
        const double limit = static_cast<double>(cell.best_static()) *
                             (pow2 ? 1.0 : 1.0 + tolerance);
        if (static_cast<double>(cell.tuned) > limit) {
          std::cerr << "FAIL: " << cell.kernel << " vlen=" << vlen << " n=" << n
                    << ": tuned " << cell.tuned << " > best static "
                    << cell.best_static() << (pow2 ? "" : " (with tolerance)")
                    << '\n';
          ++failures;
        }
        cells.push_back(std::move(cell));
      }
    }
  }

  const double vs_l1 = geomean_ratio(cells, [](const Cell& c) {
    return static_cast<double>(c.fixed[0]) / static_cast<double>(c.tuned);
  });
  const double vs_l8 = geomean_ratio(cells, [](const Cell& c) {
    return static_cast<double>(c.fixed[3]) / static_cast<double>(c.tuned);
  });
  const double vs_best = geomean_ratio(cells, [](const Cell& c) {
    return static_cast<double>(c.tuned) / static_cast<double>(c.best_static());
  });

  std::cout << "= Autotune sweep (" << cells.size() << " cells) =\n"
            << "geomean improvement vs always-LMUL=1: "
            << (vs_l1 - 1.0) * 100.0 << "%\n"
            << "geomean improvement vs always-LMUL=8: "
            << (vs_l8 - 1.0) * 100.0 << "%\n"
            << "geomean tuned / best-static: " << vs_best << "\n"
            << "tuner misses " << total_stats.misses << ", measurements "
            << total_stats.measurements << ", model-pruned "
            << total_stats.model_pruned << '\n';

  write_json(json_path, cells, vs_l1, vs_l8, vs_best, total_stats);
  std::cout << "wrote " << json_path << '\n';

  if (!fit_path.empty()) {
    tune::CostModel model;
    for (const auto& kernel : kernels) {
      for (const unsigned lmul : {1u, 2u, 4u, 8u}) {
        const auto c = fit_one(cells, kernel.shape, lmul);
        if (c.valid) model.set(kernel.shape, lmul, c);
      }
    }
    std::ofstream os(fit_path, std::ios::trunc);
    model.write_json(os);
    std::cout << "wrote cost model " << fit_path << '\n';
  }

  if (vs_l1 - 1.0 < min_improvement) {
    std::cerr << "FAIL: improvement vs always-LMUL=1 below threshold "
              << min_improvement << '\n';
    ++failures;
  }
  if (vs_l8 - 1.0 < min_improvement) {
    std::cerr << "FAIL: improvement vs always-LMUL=8 below threshold "
              << min_improvement << '\n';
    ++failures;
  }
  if (failures != 0) {
    std::cerr << failures << " gate failure(s)\n";
    return 1;
  }
  std::cout << "all autotune gates passed\n";
  return 0;
}
