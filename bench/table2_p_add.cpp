// Reproduces Table 2: p-add (RVV) vs the sequential baseline.  Thin
// formatter over the table library (tables::table2_p_add()).
#include "tables/paper_tables.hpp"

int main(int argc, char** argv) {
  return rvvsvm::tables::table_main(argc, argv, "table2");
}
