// Reproduces Table 2: p-add (RVV) vs the sequential baseline,
// VLEN = 1024, LMUL = 1, N = 10^2 .. 10^6.
#include <iostream>

#include "bench/common.hpp"
#include "svm/baseline/baseline.hpp"
#include "svm/elementwise.hpp"

namespace {

using namespace rvvsvm;

struct PaperRow {
  std::size_t n;
  std::uint64_t vec;
  std::uint64_t base;
};
constexpr PaperRow kPaper[] = {
    {100, 66, 632},         {1000, 297, 6002},     {10000, 2826, 60001},
    {100000, 28134, 600001}, {1000000, 281259, 6000001},
};

}  // namespace

int main() {
  sim::print_section(std::cout,
                     "Table 2: p_add() vs sequential baseline — dynamic instructions "
                     "(VLEN=1024, LMUL=1)");
  sim::Table table({"N", "p_add()", "p_add_baseline()", "speedup",
                    "paper p_add", "paper baseline", "paper speedup"});
  for (const auto& row : kPaper) {
    auto data = bench::random_u32(row.n, /*seed=*/11);

    auto vec_out = data;
    const std::uint64_t vec = bench::count_instructions(1024, [&] {
      svm::p_add<std::uint32_t>(std::span<std::uint32_t>(vec_out), 123u);
    });

    auto base_out = data;
    const std::uint64_t base = bench::count_instructions(1024, [&] {
      svm::baseline::p_add<std::uint32_t>(std::span<std::uint32_t>(base_out), 123u);
    });

    if (vec_out != base_out) {
      std::cerr << "FATAL: p_add outputs disagree at N=" << row.n << '\n';
      return 1;
    }

    table.add_row({std::to_string(row.n), sim::format_count(vec),
                   sim::format_count(base),
                   sim::format_ratio(static_cast<double>(base) / static_cast<double>(vec)),
                   sim::format_count(row.vec), sim::format_count(row.base),
                   sim::format_ratio(static_cast<double>(row.base) /
                                     static_cast<double>(row.vec))});
  }
  table.print(std::cout);
  std::cout << "\nShape check: speedup saturates near vl-bounded ~21x as N grows "
               "(paper: 21.33x at N=10^6).\n";
  return 0;
}
