// Extension bench: vectorized split radix sort vs a *same-algorithm* scalar
// baseline (LSD radix with byte digits), complementing Table 1's qsort()
// comparison.  The qsort baseline pays per-comparison callback overhead; a
// scalar radix sort is the strongest sequential competitor, so this is the
// conservative speedup estimate.
#include <iostream>

#include "apps/radix_sort.hpp"
#include "bench/common.hpp"
#include "svm/baseline/baseline.hpp"

namespace {

using namespace rvvsvm;

}  // namespace

int main() {
  sim::print_section(std::cout,
                     "Extension: split radix sort (RVV) vs scalar LSD radix sort "
                     "(VLEN=1024)");
  sim::Table table({"N", "vector (LMUL=1)", "vector (LMUL=8)", "scalar byte radix",
                    "speedup (m1)", "speedup (m8)"});
  for (const std::size_t n : bench::kSizes) {
    const auto keys = bench::random_u32(n, 51);

    auto vec = keys;
    const auto vcount = bench::count_instructions(1024, [&] {
      apps::split_radix_sort<std::uint32_t>(std::span<std::uint32_t>(vec));
    });
    auto vec8 = keys;
    const auto vcount8 = bench::count_instructions(1024, [&] {
      apps::split_radix_sort<std::uint32_t, 8>(std::span<std::uint32_t>(vec8));
    });
    auto seq = keys;
    const auto scount = bench::count_instructions(1024, [&] {
      svm::baseline::radix_sort<std::uint32_t>(std::span<std::uint32_t>(seq));
    });
    if (vec != seq || vec8 != seq) {
      std::cerr << "FATAL: sorters disagree at N=" << n << '\n';
      return 1;
    }
    table.add_row({std::to_string(n), sim::format_count(vcount),
                   sim::format_count(vcount8), sim::format_count(scount),
                   sim::format_ratio(static_cast<double>(scount) /
                                     static_cast<double>(vcount)),
                   sim::format_ratio(static_cast<double>(scount) /
                                     static_cast<double>(vcount8))});
  }
  table.print(std::cout);
  std::cout << "\nThe scalar radix needs only 4 byte passes (~72 instructions "
               "per element) against the vector sort's 32 bit passes, so at "
               "LMUL=1 they tie — the honest headroom of the paper's running "
               "example.  The LMUL optimization (section 6.3) restores a ~7x "
               "margin: every split sub-kernel keeps few enough live values "
               "to run spill-free at LMUL=8.\n";
  return 0;
}
