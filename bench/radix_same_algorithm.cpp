// Extension bench: vectorized split radix sort vs a same-algorithm scalar
// baseline.  Thin formatter over the table library
// (tables::extension_radix_same_algorithm()).
#include "tables/paper_tables.hpp"

int main(int argc, char** argv) {
  return rvvsvm::tables::table_main(argc, argv, "radix_same");
}
