// Shared helpers for the table/figure benchmark binaries.
//
// Every bench brackets a kernel between two counter snapshots on a fresh
// machine and reports the dynamic-instruction delta, next to the value the
// paper reports for the same cell, so shapes can be compared line by line.
// Counts here are deterministic: same input, same VLEN/LMUL, same count.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <span>
#include <vector>

#include "rvv/machine.hpp"
#include "sim/report.hpp"

namespace rvvsvm::bench {

/// The N sweep every paper table uses.
inline constexpr std::size_t kSizes[] = {100, 1000, 10000, 100000, 1000000};

/// Uniform random 32-bit keys (deterministic per seed).
inline std::vector<std::uint32_t> random_u32(std::size_t n, std::uint32_t seed,
                                             std::uint32_t bound = 0) {
  std::mt19937 rng(seed);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) {
    x = static_cast<std::uint32_t>(rng());
    if (bound != 0) x %= bound;
  }
  return v;
}

/// Deterministic full permutation of [0, n) (index reversal): every lane of
/// a gather stays busy with no rng cost, the workload shape the throughput
/// driver's permute cell uses.
inline std::vector<std::uint32_t> reversal_permutation(std::size_t n) {
  std::vector<std::uint32_t> index(n);
  for (std::size_t i = 0; i < n; ++i) {
    index[i] = static_cast<std::uint32_t>(n - 1 - i);
  }
  return index;
}

/// 0/1 head-flag vector with segments of expected length `avg_len`
/// (geometric), the segmented-workload shape the paper's Table 4 implies.
inline std::vector<std::uint32_t> random_head_flags(std::size_t n, std::size_t avg_len,
                                                    std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution head(1.0 / static_cast<double>(avg_len));
  std::vector<std::uint32_t> flags(n, 0);
  if (n > 0) flags[0] = 1;
  for (std::size_t i = 1; i < n; ++i) flags[i] = head(rng) ? 1u : 0u;
  return flags;
}

/// Runs `kernel` inside a scope on `machine` and returns the total dynamic
/// instructions it retired.
inline std::uint64_t count_instructions(rvv::Machine& machine,
                                        const std::function<void()>& kernel) {
  rvv::MachineScope scope(machine);
  const auto before = machine.counter().snapshot();
  kernel();
  return (machine.counter().snapshot() - before).total();
}

/// One fresh machine per measurement so register-file state never leaks
/// between cells.
inline std::uint64_t count_instructions(unsigned vlen_bits,
                                        const std::function<void()>& kernel,
                                        bool model_register_pressure = true) {
  rvv::Machine machine(rvv::Machine::Config{
      .vlen_bits = vlen_bits, .model_register_pressure = model_register_pressure});
  return count_instructions(machine, kernel);
}

/// Formats `ours` next to the paper's reported value.
inline std::string with_paper(std::uint64_t ours, std::uint64_t paper) {
  return sim::format_count(ours) + " (paper " + sim::format_count(paper) + ")";
}

}  // namespace rvvsvm::bench
