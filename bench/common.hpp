// Workload helpers for the *throughput* benchmarks (bench_runner /
// microbench_emulator), which time the emulator itself and use their own
// seeds.  Paper-table inputs and instruction-count measurement do NOT live
// here: every table number comes from src/tables (tables::workloads for the
// seeded inputs, tables::count_instructions for the bracketing), so the
// bench binaries, the golden suite and tools/regen_tables can never drift
// apart.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace rvvsvm::bench {

/// Uniform random 32-bit keys (deterministic per seed).
inline std::vector<std::uint32_t> random_u32(std::size_t n, std::uint32_t seed,
                                             std::uint32_t bound = 0) {
  std::mt19937 rng(seed);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) {
    x = static_cast<std::uint32_t>(rng());
    if (bound != 0) x %= bound;
  }
  return v;
}

/// Deterministic full permutation of [0, n) (index reversal): every lane of
/// a gather stays busy with no rng cost, the workload shape the throughput
/// driver's permute cell uses.
inline std::vector<std::uint32_t> reversal_permutation(std::size_t n) {
  std::vector<std::uint32_t> index(n);
  for (std::size_t i = 0; i < n; ++i) {
    index[i] = static_cast<std::uint32_t>(n - 1 - i);
  }
  return index;
}

/// 0/1 head-flag vector with segments of expected length `avg_len`
/// (geometric), the segmented-workload shape the paper's Table 4 implies.
inline std::vector<std::uint32_t> random_head_flags(std::size_t n, std::size_t avg_len,
                                                    std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution head(1.0 / static_cast<double>(avg_len));
  std::vector<std::uint32_t> flags(n, 0);
  if (n > 0) flags[0] = 1;
  for (std::size_t i = 1; i < n; ++i) flags[i] = head(rng) ? 1u : 0u;
  return flags;
}

}  // namespace rvvsvm::bench
