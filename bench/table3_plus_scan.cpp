// Reproduces Table 3: unsegmented plus-scan (RVV) vs the sequential
// baseline, VLEN = 1024, LMUL = 1, N = 10^2 .. 10^6.
#include <iostream>

#include "bench/common.hpp"
#include "svm/baseline/baseline.hpp"
#include "svm/scan.hpp"

namespace {

using namespace rvvsvm;

struct PaperRow {
  std::size_t n;
  std::uint64_t vec;
  std::uint64_t base;
};
constexpr PaperRow kPaper[] = {
    {100, 311, 626},          {1000, 2670, 6026},     {10000, 26281, 60026},
    {100000, 262531, 600026}, {1000000, 2625031, 6000026},
};

}  // namespace

int main() {
  sim::print_section(std::cout,
                     "Table 3: plus_scan() vs sequential baseline — dynamic "
                     "instructions (VLEN=1024, LMUL=1)");
  sim::Table table({"N", "plus_scan()", "plus_scan_baseline()", "speedup",
                    "paper scan", "paper baseline", "paper speedup"});
  for (const auto& row : kPaper) {
    auto data = bench::random_u32(row.n, /*seed=*/13);

    auto vec_out = data;
    const std::uint64_t vec = bench::count_instructions(1024, [&] {
      svm::plus_scan<std::uint32_t>(std::span<std::uint32_t>(vec_out));
    });

    auto base_out = data;
    const std::uint64_t base = bench::count_instructions(1024, [&] {
      svm::baseline::plus_scan<std::uint32_t>(std::span<std::uint32_t>(base_out));
    });

    if (vec_out != base_out) {
      std::cerr << "FATAL: plus_scan outputs disagree at N=" << row.n << '\n';
      return 1;
    }

    table.add_row({std::to_string(row.n), sim::format_count(vec),
                   sim::format_count(base),
                   sim::format_ratio(static_cast<double>(base) / static_cast<double>(vec)),
                   sim::format_count(row.vec), sim::format_count(row.base),
                   sim::format_ratio(static_cast<double>(row.base) /
                                     static_cast<double>(row.vec))});
  }
  table.print(std::cout);
  std::cout << "\nShape check: scan speedup is far below p-add's (the lg(vl) "
               "in-register steps); the paper measures 2.29x, our leaner "
               "per-iteration schedule lands higher but with the same plateau "
               "shape.\n";
  return 0;
}
