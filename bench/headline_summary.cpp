// Reproduces the paper's headline (abstract) numbers: plus-scan and
// segmented plus-scan speedup over the sequential baselines at LMUL = 1,
// and the best speedup achievable with the LMUL optimization of section 6.3
// (the paper quotes 2.85x / 4.29x and 21.93x / 15.09x at N = 10^6,
// VLEN = 1024).
#include <array>
#include <iostream>

#include "bench/common.hpp"
#include "svm/baseline/baseline.hpp"
#include "svm/scan.hpp"
#include "svm/segmented.hpp"

namespace {

using namespace rvvsvm;

constexpr std::size_t kN = 1000000;

template <unsigned LMUL>
std::uint64_t scan_count(const std::vector<std::uint32_t>& input) {
  auto data = input;
  return bench::count_instructions(1024, [&] {
    svm::plus_scan<std::uint32_t, LMUL>(std::span<std::uint32_t>(data));
  });
}

template <unsigned LMUL>
std::uint64_t seg_count(const std::vector<std::uint32_t>& input,
                        const std::vector<std::uint32_t>& flags) {
  auto data = input;
  return bench::count_instructions(1024, [&] {
    svm::seg_plus_scan<std::uint32_t, LMUL>(std::span<std::uint32_t>(data),
                                            std::span<const std::uint32_t>(flags));
  });
}

}  // namespace

int main() {
  const auto input = bench::random_u32(kN, /*seed=*/29);
  const auto flags = bench::random_head_flags(kN, /*avg_len=*/100, /*seed=*/30);

  auto base_scan_data = input;
  const std::uint64_t base_scan = bench::count_instructions(1024, [&] {
    svm::baseline::plus_scan<std::uint32_t>(std::span<std::uint32_t>(base_scan_data));
  });
  auto base_seg_data = input;
  const std::uint64_t base_seg = bench::count_instructions(1024, [&] {
    svm::baseline::seg_plus_scan<std::uint32_t>(std::span<std::uint32_t>(base_seg_data),
                                                std::span<const std::uint32_t>(flags));
  });

  const std::array<std::uint64_t, 4> scans{scan_count<1>(input), scan_count<2>(input),
                                           scan_count<4>(input), scan_count<8>(input)};
  const std::array<std::uint64_t, 4> segs{seg_count<1>(input, flags),
                                          seg_count<2>(input, flags),
                                          seg_count<4>(input, flags),
                                          seg_count<8>(input, flags)};
  constexpr std::array<unsigned, 4> lmuls{1, 2, 4, 8};

  sim::print_section(std::cout,
                     "Headline: scan & segmented scan speedup over sequential "
                     "(N=10^6, VLEN=1024)");
  sim::Table table({"kernel", "LMUL", "instructions", "speedup vs sequential"});
  const auto speed = [](std::uint64_t base, std::uint64_t vec) {
    return sim::format_ratio(static_cast<double>(base) / static_cast<double>(vec));
  };
  for (std::size_t i = 0; i < lmuls.size(); ++i) {
    table.add_row({"plus_scan", std::to_string(lmuls[i]),
                   sim::format_count(scans[i]), speed(base_scan, scans[i])});
  }
  for (std::size_t i = 0; i < lmuls.size(); ++i) {
    table.add_row({"seg_plus_scan", std::to_string(lmuls[i]),
                   sim::format_count(segs[i]), speed(base_seg, segs[i])});
  }
  table.print(std::cout);

  std::size_t best_scan = 0, best_seg = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    if (scans[i] < scans[best_scan]) best_scan = i;
    if (segs[i] < segs[best_seg]) best_seg = i;
  }
  std::cout << "\nPaper headline: 2.85x (scan) / 4.29x (seg) at LMUL=1; "
               "21.93x / 15.09x with the LMUL optimization.\n"
            << "Ours at LMUL=1: "
            << speed(base_scan, scans[0]) << "x / " << speed(base_seg, segs[0])
            << "x; best over LMUL: " << speed(base_scan, scans[best_scan])
            << "x (LMUL=" << lmuls[best_scan] << ") / "
            << speed(base_seg, segs[best_seg]) << "x (LMUL=" << lmuls[best_seg]
            << ").\n";
  return 0;
}
