// Reproduces the paper's headline (abstract) numbers.  Thin formatter over
// the table library (tables::headline_summary()).
#include "tables/paper_tables.hpp"

int main(int argc, char** argv) {
  return rvvsvm::tables::table_main(argc, argv, "headline");
}
