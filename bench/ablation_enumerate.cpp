// Ablation: the paper's enumerate optimization (viota/vcpop vs generic
// exclusive scan).  Thin formatter over the table library
// (tables::ablation_enumerate()).
#include "tables/paper_tables.hpp"

int main(int argc, char** argv) {
  return rvvsvm::tables::table_main(argc, argv, "ablation_enumerate");
}
