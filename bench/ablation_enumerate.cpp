// Ablation: the paper's enumerate optimization (section 4.4).
//
// Enumerate is an exclusive plus-scan over 0/1 flags.  The paper notes that
// the restriction to 0/1 inputs lets viota.m + vcpop.m replace the generic
// lg(vl)-step in-register scan — one mask instruction per block instead of a
// logarithmic slide/add chain.  This bench quantifies that choice by
// implementing enumerate both ways.
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "svm/ops.hpp"
#include "svm/scan.hpp"

namespace {

using namespace rvvsvm;
using T = std::uint32_t;

/// Generic version: exclusive plus-scan of the flags (no viota).
std::uint64_t enumerate_via_scan(const std::vector<T>& flags) {
  auto data = flags;
  return bench::count_instructions(1024, [&] {
    svm::plus_scan_exclusive<T>(std::span<T>(data));
  });
}

/// The paper's version: viota + vcpop per block (svm::enumerate).
std::uint64_t enumerate_via_viota(const std::vector<T>& flags) {
  std::vector<T> dst(flags.size());
  return bench::count_instructions(1024, [&] {
    static_cast<void>(svm::enumerate<T>(std::span<const T>(flags),
                                        std::span<T>(dst), true));
  });
}

}  // namespace

int main() {
  sim::print_section(std::cout,
                     "Ablation: enumerate via viota/vcpop (paper section 4.4) vs "
                     "generic exclusive scan (VLEN=1024, LMUL=1)");
  sim::Table table({"N", "viota+vcpop", "generic scan", "speedup"});
  for (const std::size_t n : bench::kSizes) {
    const auto flags = bench::random_head_flags(n, /*avg_len=*/2, /*seed=*/31);
    const auto fast = enumerate_via_viota(flags);
    const auto slow = enumerate_via_scan(flags);
    table.add_row({std::to_string(n), sim::format_count(fast), sim::format_count(slow),
                   sim::format_ratio(static_cast<double>(slow) / static_cast<double>(fast))});
  }
  table.print(std::cout);
  std::cout << "\nviota collapses the lg(vl) in-register scan steps into one "
               "mask instruction per block — the optimization that makes the "
               "paper's split (and hence radix sort) competitive.\n";
  return 0;
}
