// Parallel wall-clock throughput driver for the emulator itself.
//
// Where the table benches report *modeled* dynamic-instruction counts, this
// driver measures how fast the *host* executes the emulation: emulated
// elements per second of wall-clock, for each kernel × VLEN configuration,
// with the buffer pool on and off in the same process.  The pool-off rows
// reproduce the pre-pool allocation-per-instruction emulator, so every run
// carries its own baseline and the JSON it writes records a trajectory
// future PRs can regress against.
//
// Configurations run on a thread pool: the active machine is thread-local
// (rvv::MachineScope) and each measurement owns a private Machine, so cells
// are fully independent — the same property the paper's VLEN/LMUL sweeps
// exploit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rvvsvm::bench {

/// One measured cell of the throughput sweep.
struct ThroughputResult {
  std::string kernel;
  unsigned vlen = 0;
  unsigned lmul = 1;
  std::size_t n = 0;
  bool pooled = true;               ///< buffer pool recycling on?
  bool cached = true;               ///< two-level execution cache on?
  double seconds_per_pass = 0.0;    ///< best timed window's per-pass wall-clock
  double elems_per_sec = 0.0;       ///< n / seconds_per_pass
  /// Raw seconds-per-pass of every timed window, in measurement order.  The
  /// best-of-N selection keeps only the minimum; recording the raw samples
  /// lets cross-PR diffs distinguish a real regression from a noisy host.
  std::vector<double> window_seconds;
  /// Population variance of window_seconds — a one-number noise figure for
  /// the cell (0 when a single window was taken).
  double window_variance = 0.0;
  std::uint64_t instructions = 0;   ///< modeled dynamic instructions per pass
  std::uint64_t spills = 0;         ///< modeled spill stores per pass
  std::uint64_t reloads = 0;        ///< modeled reload loads per pass
  std::uint64_t trace_replays = 0;  ///< fused-trace iterations replayed (total)
  std::uint64_t ops_replayed = 0;   ///< per-op charges satisfied from traces
};

struct SweepOptions {
  std::vector<unsigned> vlens{128, 256, 512, 1024};
  std::size_t n = 1u << 16;     ///< emulated elements per pass
  double min_seconds = 0.05;    ///< minimum timed window per repetition
  unsigned repetitions = 3;     ///< timed windows per cell; best one is kept
  unsigned threads = 0;         ///< worker threads; 0 = hardware concurrency
};

/// Version stamped into every JSON report this module writes, so
/// BENCH_emulator.json and BENCH_parallel.json are self-describing and
/// diffable across PRs.  Bump when a field changes meaning or moves.
/// v4: throughput cells carry per-window raw samples + window variance.
inline constexpr int kBenchSchemaVersion = 4;

/// Runs the kernel × VLEN × configuration sweep on a thread pool and
/// returns one result per cell (deterministic order: kernels outer, VLEN
/// middle; inner: unpooled+uncached, pooled+uncached, pooled+cached).
/// The pooled+uncached cell is the interpreted path — the pre-cache
/// emulator — and the baseline the cached cell's speedup is quoted against.
[[nodiscard]] std::vector<ThroughputResult> run_throughput_sweep(
    const SweepOptions& opt);

/// Pooled-over-unpooled elements/sec ratio for one kernel at one VLEN
/// (execution cache off in both cells); returns 0 when either is missing.
[[nodiscard]] double pooled_speedup(const std::vector<ThroughputResult>& results,
                                    const std::string& kernel, unsigned vlen);

/// Cached-over-interpreted elements/sec ratio for one kernel at one VLEN
/// (buffer pool on in both cells); returns 0 when either is missing.
[[nodiscard]] double cached_speedup(const std::vector<ThroughputResult>& results,
                                    const std::string& kernel, unsigned vlen);

/// Writes the machine-readable report (results plus per-cell speedups) to
/// `path` — the BENCH_emulator.json contract.
void write_bench_json(const std::vector<ThroughputResult>& results,
                      const SweepOptions& opt, const std::string& path);

/// Prints a human-readable summary table to stdout.
void print_summary(const std::vector<ThroughputResult>& results);

// ---------------------------------------------------------------------------
// Multi-hart scaling sweep (bench/parallel_scaling) — how emulated
// elements/sec scale with the hart count of the par:: sharded engine, per
// kernel and VLEN, at a fixed shard size.  Alongside wall-clock it records
// per-hart and merged dynamic instruction counts; merged counts must not
// move with the hart count (the engine's determinism invariant), so the
// JSON doubles as a cross-PR regression anchor for the modeled costs.

/// One measured cell of the hart-scaling sweep.
struct ParallelResult {
  std::string kernel;
  unsigned vlen = 0;
  unsigned harts = 0;
  std::size_t shard_size = 0;
  std::size_t n = 0;
  double seconds_per_pass = 0.0;
  double elems_per_sec = 0.0;
  std::uint64_t merged_instructions = 0;  ///< summed over harts, per pass
  std::vector<std::uint64_t> per_hart_instructions;  ///< per pass, hart order
};

struct ParallelSweepOptions {
  std::vector<unsigned> vlens{128, 256, 512, 1024};
  std::vector<unsigned> hart_counts{1, 2, 4, 8};
  std::size_t n = 1u << 16;        ///< emulated elements per pass
  std::size_t shard_size = 1u << 12;  ///< elements per shard (fixed across cells)
  double min_seconds = 0.05;       ///< minimum timed window per cell
};

/// Runs the kernel × VLEN × hart-count sweep.  Cells run one after another
/// (each cell is internally parallel across its harts) in deterministic
/// order: kernels outer, VLEN middle, hart count inner.
[[nodiscard]] std::vector<ParallelResult> run_parallel_sweep(
    const ParallelSweepOptions& opt);

/// Elements/sec of the cell over its harts=1 sibling; 0 when missing.
[[nodiscard]] double parallel_speedup(const std::vector<ParallelResult>& results,
                                      const std::string& kernel, unsigned vlen,
                                      unsigned harts);

/// Writes the machine-readable report — the BENCH_parallel.json contract.
void write_parallel_json(const std::vector<ParallelResult>& results,
                         const ParallelSweepOptions& opt, const std::string& path);

/// Prints a human-readable summary table to stdout.
void print_parallel_summary(const std::vector<ParallelResult>& results);

}  // namespace rvvsvm::bench
