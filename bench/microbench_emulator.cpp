// google-benchmark microbenchmarks of the emulator itself (host wall-clock,
// not dynamic instruction counts): how fast the functional model executes
// kernels per emulated element.  Useful when deciding whether a sweep can
// afford N = 10^6 cells and for catching performance regressions in the
// emulator's hot paths (vreg allocation, the register-pressure model).
// Two modes:
//   * default: google-benchmark timings of individual emulator paths;
//   * --throughput [--json FILE] [--n N] [--smoke]: the parallel sweep from
//     bench_runner — kernel × VLEN × {pool on, pool off} elements/sec — which
//     writes the machine-readable BENCH_emulator.json perf trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_runner.hpp"
#include "bench/common.hpp"
#include "svm/svm.hpp"

namespace {

using namespace rvvsvm;

void BM_PlusScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = bench::random_u32(n, 3);
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 1024});
  rvv::MachineScope scope(machine);
  for (auto _ : state) {
    auto data = input;
    svm::plus_scan<std::uint32_t>(std::span<std::uint32_t>(data));
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PlusScan)->Arg(1000)->Arg(100000);

void BM_SegPlusScanLmul8(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = bench::random_u32(n, 3);
  const auto flags = bench::random_head_flags(n, 100, 4);
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 1024});
  rvv::MachineScope scope(machine);
  for (auto _ : state) {
    auto data = input;
    svm::seg_plus_scan<std::uint32_t, 8>(std::span<std::uint32_t>(data),
                                         std::span<const std::uint32_t>(flags));
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SegPlusScanLmul8)->Arg(1000)->Arg(100000);

void BM_ElementwiseAdd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto data = bench::random_u32(n, 5);
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 1024});
  rvv::MachineScope scope(machine);
  for (auto _ : state) {
    svm::p_add<std::uint32_t>(std::span<std::uint32_t>(data), 1u);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ElementwiseAdd)->Arg(1000)->Arg(100000);

void BM_Permute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = bench::random_u32(n, 5);
  const auto index = bench::reversal_permutation(n);
  std::vector<std::uint32_t> dst(n);
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 1024});
  rvv::MachineScope scope(machine);
  for (auto _ : state) {
    svm::permute<std::uint32_t>(std::span<const std::uint32_t>(input),
                                std::span<std::uint32_t>(dst),
                                std::span<const std::uint32_t>(index));
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Permute)->Arg(1000)->Arg(100000);

void BM_RegFilePressureModel(benchmark::State& state) {
  // Isolates the allocator: repeated define/use/release churn at LMUL=8.
  sim::InstCounter counter;
  for (auto _ : state) {
    sim::VRegFileModel model(counter);
    std::vector<sim::ValueId> live;
    for (int round = 0; round < 100; ++round) {
      model.begin_inst();
      const auto id = model.define(8);
      model.end_inst();
      live.push_back(id);
      if (live.size() > 6) {
        model.release(live.front());
        live.erase(live.begin());
      }
      for (const auto v : live) {
        model.begin_inst();
        model.use(v);
        model.end_inst();
      }
    }
    benchmark::DoNotOptimize(counter.total());
  }
}
BENCHMARK(BM_RegFilePressureModel);

/// --throughput mode: run the parallel sweep and emit BENCH_emulator.json.
int run_throughput_mode(int argc, char** argv) {
  bench::SweepOptions opt;
  std::string json_path = "BENCH_emulator.json";
  double min_speedup = 0.0;  // 0 = no floor
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--throughput") continue;
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--n" && i + 1 < argc) {
      opt.n = std::stoul(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      opt.threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--min-speedup" && i + 1 < argc) {
      min_speedup = std::stod(argv[++i]);
    } else if (arg == "--smoke") {
      // CI-sized run: small input, short timing windows, two VLENs.
      opt.n = 1u << 12;
      opt.min_seconds = 0.01;
      opt.vlens = {128, 1024};
    } else {
      std::cerr << "usage: microbench_emulator [--throughput [--json FILE] "
                   "[--n N] [--threads T] [--min-speedup X] [--smoke]]\n";
      return 2;
    }
  }
  const auto results = bench::run_throughput_sweep(opt);
  bench::print_summary(results);
  bench::write_bench_json(results, opt, json_path);
  std::cout << "\nwrote " << json_path << '\n';

  if (min_speedup > 0.0) {
    // Perf floor: the geometric-mean cached-vs-interpreted speedup over all
    // kernels at the widest swept VLEN must reach the committed bar.
    const unsigned vlen = *std::max_element(opt.vlens.begin(), opt.vlens.end());
    double log_sum = 0.0;
    int cells = 0;
    for (const char* kernel : {"elementwise", "scan", "permute", "seg_scan_m8"}) {
      const double s = bench::cached_speedup(results, kernel, vlen);
      std::cout << "cached speedup " << kernel << "@vlen" << vlen << ": "
                << s << "x\n";
      if (s <= 0.0) {
        std::cerr << "microbench_emulator: missing cached/interpreted cell for "
                  << kernel << "@vlen" << vlen << '\n';
        return 1;
      }
      log_sum += std::log(s);
      ++cells;
    }
    const double geomean = std::exp(log_sum / cells);
    std::cout << "cached speedup geomean@vlen" << vlen << ": " << geomean
              << "x (floor " << min_speedup << "x)\n";
    if (geomean < min_speedup) {
      std::cerr << "microbench_emulator: cached-path speedup " << geomean
                << "x fell below the committed floor " << min_speedup << "x\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--throughput") == 0) {
      try {
        return run_throughput_mode(argc, argv);
      } catch (const std::exception& e) {
        std::cerr << "microbench_emulator: " << e.what() << '\n';
        return 1;
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
