// google-benchmark microbenchmarks of the emulator itself (host wall-clock,
// not dynamic instruction counts): how fast the functional model executes
// kernels per emulated element.  Useful when deciding whether a sweep can
// afford N = 10^6 cells and for catching performance regressions in the
// emulator's hot paths (vreg allocation, the register-pressure model).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/common.hpp"
#include "svm/scan.hpp"
#include "svm/segmented.hpp"

namespace {

using namespace rvvsvm;

void BM_PlusScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = bench::random_u32(n, 3);
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 1024});
  rvv::MachineScope scope(machine);
  for (auto _ : state) {
    auto data = input;
    svm::plus_scan<std::uint32_t>(std::span<std::uint32_t>(data));
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PlusScan)->Arg(1000)->Arg(100000);

void BM_SegPlusScanLmul8(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = bench::random_u32(n, 3);
  const auto flags = bench::random_head_flags(n, 100, 4);
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 1024});
  rvv::MachineScope scope(machine);
  for (auto _ : state) {
    auto data = input;
    svm::seg_plus_scan<std::uint32_t, 8>(std::span<std::uint32_t>(data),
                                         std::span<const std::uint32_t>(flags));
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SegPlusScanLmul8)->Arg(1000)->Arg(100000);

void BM_RegFilePressureModel(benchmark::State& state) {
  // Isolates the allocator: repeated define/use/release churn at LMUL=8.
  sim::InstCounter counter;
  for (auto _ : state) {
    sim::VRegFileModel model(counter);
    std::vector<sim::ValueId> live;
    for (int round = 0; round < 100; ++round) {
      model.begin_inst();
      const auto id = model.define(8);
      model.end_inst();
      live.push_back(id);
      if (live.size() > 6) {
        model.release(live.front());
        live.erase(live.begin());
      }
      for (const auto v : live) {
        model.begin_inst();
        model.use(v);
        model.end_inst();
      }
    }
    benchmark::DoNotOptimize(counter.total());
  }
}
BENCHMARK(BM_RegFilePressureModel);

}  // namespace

BENCHMARK_MAIN();
