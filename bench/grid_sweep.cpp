// Full VLEN × LMUL grid: the four core kernels at N=10^4 under every
// (VLEN, LMUL) combination — Table 5's LMUL axis and Table 7's VLEN axis
// generalized to the whole plane.  Thin formatter over the table library
// (tables::grid_sweep()).
#include "tables/paper_tables.hpp"

int main(int argc, char** argv) {
  return rvvsvm::tables::table_main(argc, argv, "grid");
}
