// serve_load — open-loop load driver for the multi-tenant scan service.
//
//   serve_load [--seed N] [--requests N] [--harts-list 1,2,4,8]
//              [--vlen BITS] [--min-rps X] [--max-p99-ms X]
//              [--json PATH] [--smoke]
//
// For each hart count it stands up a background ScanService, replays a
// seeded mixed workload (all six request kinds, three tenants, sizes from
// tiny coalescible strips to whole-pool large requests) in bounded open-loop
// bursts, and reports sustained requests/sec plus p50/p99 end-to-end
// latency.  A final chaos run poisons a fixed fraction of requests with
// persistent injected hart crashes and checks the service's isolation
// contract: exactly the poisoned requests fail, everything else completes,
// and throughput stays above zero.
//
// Two overload-containment scenarios (ISSUE 10) follow, both hard gates:
//
//   * overload — a seeded 2x-queue-capacity open-loop burst with all three
//     priority classes and per-request deadlines.  Gates: nothing but the
//     two lowest classes is ever shed, every shed/reject decision lands at
//     admission (before any execution), accepted p99 virtual-time latency
//     stays under the deadline, and bills remain exact with shed and
//     cancelled requests in the mix.
//
//   * breaker — a tenant whose requests always fault, interleaved 1-in-10
//     with healthy traffic under per-tenant circuit breakers.  Gates: the
//     breaker trips (later poisoned arrivals are quarantined unexecuted),
//     every healthy request completes, and the pool instructions wasted on
//     the rogue tenant stay within 10% of all retired work.
//
// --min-rps / --max-p99-ms turn the report into a CI gate (applied to the
// highest-hart healthy run).  The JSON written by --json is the
// BENCH_serve.json contract.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "check/fault_injection.hpp"
#include "check/rng.hpp"
#include "serve/service.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using rvvsvm::check::FaultInjector;
using rvvsvm::check::Rng;
using rvvsvm::serve::ErrorCode;
using rvvsvm::serve::Kind;
using rvvsvm::serve::Request;
using rvvsvm::serve::Response;
using rvvsvm::serve::ScanService;
using rvvsvm::serve::Value;

struct Options {
  std::uint64_t seed = 1;
  std::size_t requests = 2000;
  std::vector<unsigned> harts{1, 2, 4, 8};
  unsigned vlen = 256;
  double min_rps = 0.0;      ///< 0 = no gate
  double max_p99_ms = 0.0;   ///< 0 = no gate
  std::string json_path;
  bool smoke = false;
};

struct RunResult {
  const char* mode = "throughput";  ///< throughput | chaos | overload | breaker
  unsigned harts = 0;
  bool chaos = false;
  std::size_t requests = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t rejected = 0;
  std::size_t poisoned = 0;  ///< chaos runs: requests carrying an injector
  double seconds = 0.0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t billed_instructions = 0;
  std::uint64_t merged_instructions = 0;
  bool bills_exact = false;  ///< sum of bills == pool merged counts
  // Overload/breaker scenario counters (zero elsewhere).
  std::size_t shed = 0;              ///< kShedOverload responses
  std::size_t interactive_shed = 0;  ///< sheds that hit the top class (gate: 0)
  std::size_t deadline_exceeded = 0; ///< expired-in-queue + cancelled
  std::size_t quarantined = 0;       ///< kTenantQuarantined responses
  std::uint64_t vt_p99 = 0;          ///< p99 virtual-time latency (accepted)
  std::uint64_t deadline_vt = 0;     ///< the per-request deadline budget used
  double waste_fraction = 0.0;       ///< abandoned / (merged + abandoned)
  bool sheds_decided_at_admission = false;
};

/// Deterministic mixed workload: mostly small coalescible strips, some
/// individual-path kinds, a few whole-pool large requests.
[[nodiscard]] Request gen_request(Rng& rng, std::size_t large_threshold) {
  Request req;
  req.tenant = 1 + rng.below(3);
  const std::uint64_t roll = rng.below(100);
  if (roll < 30) {
    req.kind = Kind::kScan;
  } else if (roll < 45) {
    req.kind = Kind::kScanExclusive;
  } else if (roll < 65) {
    req.kind = Kind::kReduce;
  } else if (roll < 80) {
    req.kind = Kind::kCompress;
  } else if (roll < 90) {
    req.kind = Kind::kHistogram;
  } else {
    req.kind = Kind::kSort;
  }

  std::size_t n = 0;
  const std::uint64_t size_roll = rng.below(100);
  if (size_roll < 70) {
    n = 1 + rng.below(64);  // coalescible strip
  } else if (size_roll < 95) {
    n = 64 + rng.below(large_threshold > 64 ? large_threshold - 64 : 64);
  } else {
    n = large_threshold + rng.below(large_threshold);  // whole-pool
  }
  if (req.kind == Kind::kSort && n > 512) n = 512;  // keep sort passes sane

  req.data.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    req.data.push_back(static_cast<Value>(rng.next() & 0xFFFFu));
  }
  if (req.kind == Kind::kCompress) {
    req.flags.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      req.flags.push_back(static_cast<Value>(rng.next() & 1u));
    }
  }
  if (req.kind == Kind::kHistogram) {
    req.bins = 64;
    for (Value& v : req.data) v %= 64;
  }
  return req;
}

RunResult run_load(const Options& opt, unsigned harts, bool chaos) {
  RunResult r;
  r.mode = chaos ? "chaos" : "throughput";
  r.harts = harts;
  r.chaos = chaos;
  r.requests = opt.requests;

  ScanService::Config cfg;
  cfg.harts = harts;
  cfg.machine.vlen_bits = opt.vlen;
  cfg.queue_capacity = 4096;
  cfg.coalesce_threshold = 1024;
  cfg.background = true;
  ScanService svc(cfg);

  Rng rng(opt.seed * 1000003u + harts);
  std::vector<Request> workload;
  workload.reserve(opt.requests);
  for (std::size_t i = 0; i < opt.requests; ++i) {
    workload.push_back(gen_request(rng, cfg.coalesce_threshold));
  }

  // Chaos: every 97th request carries a persistent injected crash — it must
  // fail alone.  Injectors live here so they outlive their requests.
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  std::vector<char> poisoned(workload.size(), 0);
  if (chaos) {
    for (std::size_t i = 13; i < workload.size(); i += 97) {
      injectors.push_back(std::make_unique<FaultInjector>(
          FaultInjector::Plan{.trap_at_instruction = 1 + (i % 7),
                              .crash = (i % 2) == 0,
                              .persistent = true}));
      workload[i].chaos_hook = injectors.back().get();
      poisoned[i] = 1;
      ++r.poisoned;
    }
  }

  // Open-loop submission in bounded bursts: fire a burst without waiting,
  // then collect it, so the queue and the batching scheduler stay loaded
  // without the driver outrunning the bounded queue.
  constexpr std::size_t kBurst = 256;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(workload.size());
  std::size_t chaos_failed_on_poisoned = 0;

  const auto t0 = Clock::now();
  std::size_t next = 0;
  while (next < workload.size()) {
    const std::size_t burst_end = std::min(next + kBurst, workload.size());
    std::vector<std::future<Response>> futs;
    std::vector<Clock::time_point> submit_times;
    std::vector<std::size_t> ids;
    futs.reserve(burst_end - next);
    for (std::size_t i = next; i < burst_end; ++i) {
      submit_times.push_back(Clock::now());
      futs.push_back(svc.submit(Request(workload[i])));
      ids.push_back(i);
    }
    for (std::size_t j = 0; j < futs.size(); ++j) {
      const Response resp = futs[j].get();
      const double ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - submit_times[j])
                            .count();
      if (resp.ok()) {
        ++r.completed;
        latencies_ms.push_back(ms);
      } else if (resp.error == ErrorCode::kQueueFull) {
        ++r.rejected;
      } else {
        ++r.failed;
        if (poisoned[ids[j]] != 0) ++chaos_failed_on_poisoned;
      }
    }
    next = burst_end;
  }
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  r.rps = r.seconds > 0.0 ? static_cast<double>(r.completed) / r.seconds : 0.0;

  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    r.p50_ms = latencies_ms[latencies_ms.size() / 2];
    r.p99_ms = latencies_ms[(latencies_ms.size() * 99) / 100];
  }

  svc.stop();
  r.billed_instructions = svc.billing().grand_total().total();
  r.merged_instructions = svc.pool().merged_counts().total();
  r.bills_exact =
      svc.billing().grand_total() == svc.pool().merged_counts();

  if (chaos) {
    // Isolation contract: exactly the poisoned requests fail.
    if (r.failed != r.poisoned || chaos_failed_on_poisoned != r.failed) {
      std::cerr << "serve_load: CHAOS ISOLATION VIOLATION — poisoned "
                << r.poisoned << ", failed " << r.failed << " ("
                << chaos_failed_on_poisoned << " on poisoned requests)\n";
    }
  }
  return r;
}

// Seeded 2x-queue-capacity open-loop overload burst, foreground mode so the
// saturation point (and therefore every shed decision) is deterministic in
// the seed.  All three priority classes arrive round-robin, every request
// carries the same virtual-time deadline.
RunResult run_overload(const Options& opt, unsigned harts) {
  RunResult r;
  r.mode = "overload";
  r.harts = harts;

  ScanService::Config cfg;
  cfg.harts = harts;
  cfg.machine.vlen_bits = opt.vlen;
  cfg.queue_capacity = 64;
  cfg.coalesce_threshold = 1024;
  cfg.background = false;
  ScanService svc(cfg);

  const std::size_t total = cfg.queue_capacity * 2;  // 2x capacity, open loop
  r.requests = total;
  constexpr std::uint64_t kDeadlineVt = 1u << 26;
  r.deadline_vt = kDeadlineVt;

  Rng rng(opt.seed * 7777u + harts);
  struct Slot {
    std::future<Response> fut;
    rvvsvm::serve::Priority prio = rvvsvm::serve::Priority::kBatch;
    bool decided_at_admission = false;
  };
  std::vector<Slot> slots;
  slots.reserve(total);

  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < total; ++i) {
    Request req = gen_request(rng, cfg.coalesce_threshold);
    req.priority = static_cast<rvvsvm::serve::Priority>(i % 3);
    req.deadline_insts = kDeadlineVt;
    Slot slot;
    slot.prio = req.priority;
    slot.fut = svc.submit(std::move(req));
    slots.push_back(std::move(slot));
  }
  // Nothing has executed yet (foreground mode): every future that is
  // already decided was shed or rejected purely at admission.
  for (Slot& s : slots) {
    s.decided_at_admission =
        s.fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  }
  svc.drain();
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();

  std::vector<std::uint64_t> vt_latencies;
  bool late_rejection = false;
  for (Slot& s : slots) {
    const Response resp = s.fut.get();
    switch (resp.error) {
      case ErrorCode::kOk:
        ++r.completed;
        vt_latencies.push_back(resp.vt_latency);
        break;
      case ErrorCode::kShedOverload:
        ++r.shed;
        if (s.prio == rvvsvm::serve::Priority::kInteractive) {
          ++r.interactive_shed;
        }
        if (!s.decided_at_admission) late_rejection = true;
        break;
      case ErrorCode::kQueueFull:
      case ErrorCode::kDeadlineUnmeetable:
        ++r.rejected;
        if (!s.decided_at_admission) late_rejection = true;
        break;
      case ErrorCode::kDeadlineExceeded:
        ++r.deadline_exceeded;
        ++r.failed;
        break;
      default:
        ++r.failed;
        break;
    }
  }
  r.sheds_decided_at_admission = !late_rejection;
  r.rps = r.seconds > 0.0 ? static_cast<double>(r.completed) / r.seconds : 0.0;
  if (!vt_latencies.empty()) {
    std::sort(vt_latencies.begin(), vt_latencies.end());
    r.vt_p99 = vt_latencies[(vt_latencies.size() * 99) / 100];
  }

  svc.stop();
  r.billed_instructions = svc.billing().grand_total().total();
  r.merged_instructions = svc.pool().merged_counts().total();
  r.bills_exact = svc.billing().grand_total() == svc.pool().merged_counts();
  const double abandoned =
      static_cast<double>(svc.pool().abandoned_counts().total());
  const double retired = static_cast<double>(r.merged_instructions) + abandoned;
  r.waste_fraction = retired > 0.0 ? abandoned / retired : 0.0;
  return r;
}

// Breaker isolation: one tenant in ten requests always faults; per-tenant
// circuit breakers must quarantine it after the threshold so the pool stops
// burning retries on it, while every healthy request still completes.
RunResult run_breaker(const Options& opt, unsigned harts) {
  RunResult r;
  r.mode = "breaker";
  r.harts = harts;

  ScanService::Config cfg;
  cfg.harts = harts;
  cfg.machine.vlen_bits = opt.vlen;
  cfg.coalesce_threshold = 1024;
  cfg.background = false;
  cfg.breaker = {.threshold = 3, .cooldown_vt = std::uint64_t{1} << 40};
  ScanService svc(cfg);

  const std::size_t total = std::min<std::size_t>(opt.requests, 400);
  r.requests = total;
  Rng rng(opt.seed * 31337u + harts);
  FaultInjector inj({.trap_at_instruction = 2, .persistent = true});

  // Submit in bursts with a drain between them so breaker trips from one
  // burst shape admission in the next — the daemon steady state, serialized.
  constexpr std::size_t kBurst = 32;
  std::size_t healthy_failed = 0;
  std::size_t poisoned_executed_failures = 0;
  const auto t0 = Clock::now();
  std::size_t next = 0;
  while (next < total) {
    const std::size_t burst_end = std::min(next + kBurst, total);
    std::vector<std::future<Response>> futs;
    std::vector<char> is_poisoned;
    for (std::size_t i = next; i < burst_end; ++i) {
      Request req;
      if (i % 10 == 0) {
        req = gen_request(rng, cfg.coalesce_threshold);
        req.data.resize(std::min<std::size_t>(req.data.size(), 24));
        req.kind = Kind::kScan;
        req.flags.clear();
        req.tenant = 9;
        req.chaos_hook = &inj;
        ++r.poisoned;
      } else {
        req = gen_request(rng, cfg.coalesce_threshold);
        if (req.tenant == 9) req.tenant = 1;
      }
      is_poisoned.push_back(i % 10 == 0 ? 1 : 0);
      futs.push_back(svc.submit(std::move(req)));
    }
    svc.drain();
    for (std::size_t j = 0; j < futs.size(); ++j) {
      const Response resp = futs[j].get();
      if (resp.ok()) {
        ++r.completed;
      } else if (resp.error == ErrorCode::kTenantQuarantined) {
        ++r.quarantined;
      } else {
        ++r.failed;
        if (is_poisoned[j] != 0) {
          ++poisoned_executed_failures;
        } else {
          ++healthy_failed;
        }
      }
    }
    next = burst_end;
  }
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  r.rps = r.seconds > 0.0 ? static_cast<double>(r.completed) / r.seconds : 0.0;

  svc.stop();
  r.billed_instructions = svc.billing().grand_total().total();
  r.merged_instructions = svc.pool().merged_counts().total();
  r.bills_exact = svc.billing().grand_total() == svc.pool().merged_counts();
  const double abandoned =
      static_cast<double>(svc.pool().abandoned_counts().total());
  const double retired = static_cast<double>(r.merged_instructions) + abandoned;
  r.waste_fraction = retired > 0.0 ? abandoned / retired : 0.0;
  if (healthy_failed != 0) {
    std::cerr << "serve_load: BREAKER ISOLATION VIOLATION — " << healthy_failed
              << " healthy requests failed\n";
    r.quarantined = 0;  // force the gate below to trip
  }
  if (poisoned_executed_failures > cfg.breaker.threshold + kBurst / 10) {
    std::cerr << "serve_load: breaker let " << poisoned_executed_failures
              << " poisoned requests execute before tripping\n";
    r.quarantined = 0;  // force the gate below to trip
  }
  return r;
}

std::string json_number(double v) {
  std::ostringstream os;
  os << std::setprecision(6) << v;
  return os.str();
}

void write_json(const std::vector<RunResult>& results, const Options& opt,
                const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "serve_load: cannot write " << path << "\n";
    std::exit(2);
  }
  out << "{\n"
      << "  \"schema\": \"rvvsvm-bench-serve\",\n"
      << "  \"schema_version\": 2,\n"
      << "  \"seed\": " << opt.seed << ",\n"
      << "  \"requests_per_run\": " << opt.requests << ",\n"
      << "  \"vlen\": " << opt.vlen << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    out << "    {\"mode\": \"" << r.mode << "\", \"harts\": " << r.harts
        << ", \"chaos\": " << (r.chaos ? "true" : "false")
        << ", \"requests\": " << r.requests
        << ", \"completed\": " << r.completed << ", \"failed\": " << r.failed
        << ", \"rejected\": " << r.rejected
        << ", \"poisoned\": " << r.poisoned
        << ", \"shed\": " << r.shed
        << ", \"interactive_shed\": " << r.interactive_shed
        << ", \"deadline_exceeded\": " << r.deadline_exceeded
        << ", \"quarantined\": " << r.quarantined
        << ", \"vt_p99\": " << r.vt_p99
        << ", \"deadline_vt\": " << r.deadline_vt
        << ", \"waste_fraction\": " << json_number(r.waste_fraction)
        << ", \"sheds_decided_at_admission\": "
        << (r.sheds_decided_at_admission ? "true" : "false")
        << ", \"seconds\": " << json_number(r.seconds)
        << ", \"req_per_sec\": " << json_number(r.rps)
        << ", \"p50_ms\": " << json_number(r.p50_ms)
        << ", \"p99_ms\": " << json_number(r.p99_ms)
        << ", \"billed_instructions\": " << r.billed_instructions
        << ", \"merged_instructions\": " << r.merged_instructions
        << ", \"bills_exact\": " << (r.bills_exact ? "true" : "false") << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void print_summary(const std::vector<RunResult>& results) {
  std::cout << std::left << std::setw(12) << "mode" << std::setw(7) << "harts"
            << std::right << std::setw(10) << "done" << std::setw(8) << "fail"
            << std::setw(8) << "shed" << std::setw(8) << "quar"
            << std::setw(12) << "req/s" << std::setw(11) << "p99 ms"
            << std::setw(8) << "exact" << '\n';
  for (const RunResult& r : results) {
    std::cout << std::left << std::setw(12) << r.mode << std::setw(7)
              << r.harts << std::right << std::setw(10) << r.completed
              << std::setw(8) << r.failed << std::setw(8) << r.shed
              << std::setw(8) << r.quarantined << std::setw(12) << std::fixed
              << std::setprecision(1) << r.rps << std::setw(11)
              << std::setprecision(3) << r.p99_ms << std::setw(8)
              << (r.bills_exact ? "yes" : "NO") << '\n';
  }
}

[[nodiscard]] bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t value = 0;
  for (const char ch : s) {
    if (ch < '0' || ch > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  out = value;
  return true;
}

[[nodiscard]] bool parse_double(std::string_view s, double& out) {
  try {
    out = std::stod(std::string(s));
  } catch (...) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> std::string_view {
      if (i + 1 >= argc) {
        std::cerr << "serve_load: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    std::uint64_t v = 0;
    if (arg == "--seed") {
      if (!parse_u64(value(), opt.seed)) return 2;
    } else if (arg == "--requests") {
      if (!parse_u64(value(), v) || v == 0) return 2;
      opt.requests = v;
    } else if (arg == "--vlen") {
      if (!parse_u64(value(), v) || v == 0) return 2;
      opt.vlen = static_cast<unsigned>(v);
    } else if (arg == "--harts-list") {
      opt.harts.clear();
      std::istringstream list{std::string(value())};
      std::string tok;
      while (std::getline(list, tok, ',')) {
        if (!parse_u64(tok, v) || v == 0) return 2;
        opt.harts.push_back(static_cast<unsigned>(v));
      }
      if (opt.harts.empty()) return 2;
    } else if (arg == "--min-rps") {
      if (!parse_double(value(), opt.min_rps)) return 2;
    } else if (arg == "--max-p99-ms") {
      if (!parse_double(value(), opt.max_p99_ms)) return 2;
    } else if (arg == "--json") {
      opt.json_path = std::string(value());
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: serve_load [--seed N] [--requests N]\n"
                   "                  [--harts-list 1,2,4,8] [--vlen BITS]\n"
                   "                  [--min-rps X] [--max-p99-ms X]\n"
                   "                  [--json PATH] [--smoke]\n";
      return 0;
    } else {
      std::cerr << "serve_load: unknown option " << arg << "\n";
      return 2;
    }
  }
  if (opt.smoke) {
    opt.requests = std::min<std::size_t>(opt.requests, 300);
    opt.harts = {2};
  }

  std::vector<RunResult> results;
  for (const unsigned harts : opt.harts) {
    std::cout << "serve_load: " << opt.requests << " requests @ " << harts
              << " hart" << (harts == 1 ? "" : "s") << "...\n";
    results.push_back(run_load(opt, harts, /*chaos=*/false));
  }
  // Chaos run at the widest pool: injected crashes must fail alone.
  const unsigned chaos_harts = opt.harts.back();
  std::cout << "serve_load: chaos run @ " << chaos_harts << " harts...\n";
  results.push_back(run_load(opt, chaos_harts, /*chaos=*/true));
  const std::size_t widest_healthy = results.size() - 2;

  // Overload-containment scenarios (always gated, see the file header).
  std::cout << "serve_load: overload burst @ " << chaos_harts << " harts...\n";
  results.push_back(run_overload(opt, chaos_harts));
  std::cout << "serve_load: breaker isolation @ " << chaos_harts
            << " harts...\n";
  results.push_back(run_breaker(opt, chaos_harts));

  print_summary(results);
  if (!opt.json_path.empty()) write_json(results, opt, opt.json_path);

  int rc = 0;
  for (const RunResult& r : results) {
    if (!r.bills_exact) {
      std::cerr << "serve_load: FAIL — bills not exact in " << r.mode
                << " run at " << r.harts << " harts\n";
      rc = 1;
    }
    if (r.chaos && r.failed != r.poisoned) {
      std::cerr << "serve_load: FAIL — chaos isolation violated\n";
      rc = 1;
    }
    if (r.chaos && r.rps <= 0.0) {
      std::cerr << "serve_load: FAIL — no throughput under chaos\n";
      rc = 1;
    }
    if (r.mode == std::string_view("overload")) {
      if (r.interactive_shed != 0) {
        std::cerr << "serve_load: FAIL — overload shed " << r.interactive_shed
                  << " interactive requests\n";
        rc = 1;
      }
      if (r.shed + r.rejected == 0) {
        std::cerr << "serve_load: FAIL — 2x-capacity burst shed nothing "
                     "(not saturating?)\n";
        rc = 1;
      }
      if (!r.sheds_decided_at_admission) {
        std::cerr << "serve_load: FAIL — a shed/reject decision waited for "
                     "execution\n";
        rc = 1;
      }
      if (r.completed > 0 && r.vt_p99 > r.deadline_vt) {
        std::cerr << "serve_load: FAIL — accepted p99 vt latency " << r.vt_p99
                  << " above the deadline " << r.deadline_vt << "\n";
        rc = 1;
      }
    }
    if (r.mode == std::string_view("breaker")) {
      if (r.quarantined == 0) {
        std::cerr << "serve_load: FAIL — breaker never quarantined the rogue "
                     "tenant\n";
        rc = 1;
      }
      if (r.waste_fraction > 0.10) {
        std::cerr << "serve_load: FAIL — rogue tenant wasted "
                  << json_number(100.0 * r.waste_fraction)
                  << "% of pool instructions (gate 10%)\n";
        rc = 1;
      }
    }
  }
  // Perf gates apply to the widest healthy run.
  const RunResult& gated = results[widest_healthy];
  if (opt.min_rps > 0.0 && gated.rps < opt.min_rps) {
    std::cerr << "serve_load: FAIL — " << gated.rps << " req/s below gate "
              << opt.min_rps << "\n";
    rc = 1;
  }
  if (opt.max_p99_ms > 0.0 && gated.p99_ms > opt.max_p99_ms) {
    std::cerr << "serve_load: FAIL — p99 " << gated.p99_ms
              << " ms above gate " << opt.max_p99_ms << "\n";
    rc = 1;
  }
  return rc;
}
