// Ablation: cross-block carry through memory vs through a register.
//
// The paper's Listing 6 reads the carry back from memory after the block
// store (`carry = src[vl - 1]`).  The alternative extracts it from the
// register with vslidedown + vmv.x.s before the store.  This bench compares
// the two schedules — a design choice DESIGN.md calls out — by implementing
// both directly against the emulator.
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "rvv/rvv.hpp"
#include "sim/scalar_model.hpp"

namespace {

using namespace rvvsvm;

/// Paper-style: carry re-read from memory after the store.
std::uint64_t scan_carry_via_memory(std::vector<std::uint32_t> data) {
  return bench::count_instructions(1024, [&] {
    rvv::Machine& m = rvv::Machine::active();
    m.scalar().charge(sim::kKernelPrologue);
    std::uint32_t carry = 0;
    std::size_t n = data.size(), pos = 0, vl = 0;
    for (; n > 0; n -= vl, pos += vl) {
      vl = m.vsetvl<std::uint32_t>(n);
      auto x = rvv::vle<std::uint32_t>(std::span<const std::uint32_t>(data).subspan(pos), vl);
      for (std::size_t offset = 1; offset < vl; offset <<= 1) {
        auto y = rvv::vmv_v_x<std::uint32_t>(0u, vl);
        y = rvv::vslideup(y, x, offset, vl);
        x = rvv::vadd(x, y, vl);
        m.scalar().charge(sim::kInnerScanStep);
      }
      x = rvv::vadd(x, carry, vl);
      rvv::vse(std::span<std::uint32_t>(data).subspan(pos), x, vl);
      carry = data[pos + vl - 1];
      m.scalar().charge({.alu = 1, .load = 1});
      m.scalar().charge(sim::stripmine_iteration(1));
    }
  });
}

/// Register-carry variant: vslidedown + vmv.x.s, no memory round-trip.
std::uint64_t scan_carry_via_register(std::vector<std::uint32_t> data) {
  return bench::count_instructions(1024, [&] {
    rvv::Machine& m = rvv::Machine::active();
    m.scalar().charge(sim::kKernelPrologue);
    std::uint32_t carry = 0;
    std::size_t n = data.size(), pos = 0, vl = 0;
    for (; n > 0; n -= vl, pos += vl) {
      vl = m.vsetvl<std::uint32_t>(n);
      auto x = rvv::vle<std::uint32_t>(std::span<const std::uint32_t>(data).subspan(pos), vl);
      for (std::size_t offset = 1; offset < vl; offset <<= 1) {
        auto y = rvv::vmv_v_x<std::uint32_t>(0u, vl);
        y = rvv::vslideup(y, x, offset, vl);
        x = rvv::vadd(x, y, vl);
        m.scalar().charge(sim::kInnerScanStep);
      }
      x = rvv::vadd(x, carry, vl);
      carry = rvv::vmv_x_s(rvv::vslidedown(x, vl - 1, vl));
      rvv::vse(std::span<std::uint32_t>(data).subspan(pos), x, vl);
      m.scalar().charge(sim::stripmine_iteration(1));
    }
  });
}

}  // namespace

int main() {
  sim::print_section(std::cout,
                     "Ablation: plus-scan carry via memory (paper Listing 6) vs "
                     "via register extraction (VLEN=1024, LMUL=1)");
  sim::Table table({"N", "carry via memory", "carry via register", "ratio"});
  for (const std::size_t n : bench::kSizes) {
    const auto input = bench::random_u32(n, /*seed=*/13);
    const std::uint64_t mem = scan_carry_via_memory(input);
    const std::uint64_t reg = scan_carry_via_register(input);
    table.add_row({std::to_string(n), sim::format_count(mem), sim::format_count(reg),
                   sim::format_ratio(static_cast<double>(mem) / static_cast<double>(reg), 3)});
  }
  table.print(std::cout);
  std::cout << "\nBoth schedules cost the same instruction count per block "
               "(load+alu vs slidedown+mv); the memory variant adds a "
               "store-to-load dependency a real pipeline would stall on, which "
               "instruction counting cannot see — the reason the paper's "
               "choice is count-neutral here.\n";
  return 0;
}
