// Ablation: cross-block carry through memory vs through a register.  The
// two hand-scheduled kernels live in the table library next to their
// measurement (tables::ablation_carry()); this binary just formats the rows.
#include "tables/paper_tables.hpp"

int main(int argc, char** argv) {
  return rvvsvm::tables::table_main(argc, argv, "ablation_carry");
}
