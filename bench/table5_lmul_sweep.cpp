// Reproduces Tables 5 and 6: segmented plus-scan dynamic instruction counts
// across LMUL in {1, 2, 4, 8} at VLEN = 1024, and the efficiency ratio
// (speedup over LMUL=1) / LMUL.
//
// The paper's Table 5 LMUL=2 column exactly repeats Table 4's *baseline*
// column (1124, 11024, ...), which is almost certainly a transcription
// error; the measured LMUL=2 counts here fall between LMUL=1 and LMUL=4 as
// the analysis in section 6.3 predicts.  The LMUL=8 anomaly — slower than
// LMUL=1 at small N because of register spilling, faster at large N — is
// produced by the register-file pressure model, not hard-coded.
#include <array>
#include <iostream>

#include "bench/common.hpp"
#include "svm/segmented.hpp"

namespace {

using namespace rvvsvm;

constexpr std::array<unsigned, 4> kLmuls{1, 2, 4, 8};

struct PaperRow {
  std::size_t n;
  std::array<std::uint64_t, 4> counts;  // LMUL 1, 2, 4, 8
};
constexpr PaperRow kPaper[] = {
    {100, {331, 1124, 145, 2090}},
    {1000, {2639, 11024, 887, 2668}},
    {10000, {25693, 110024, 8377, 9284}},
    {100000, {256289, 1100024, 82907, 74650}},
    {1000000, {2562539, 11000024, 828205, 728586}},
};

template <unsigned LMUL>
std::uint64_t run(std::span<std::uint32_t> data, std::span<const std::uint32_t> flags) {
  return bench::count_instructions(1024, [&] {
    svm::seg_plus_scan<std::uint32_t, LMUL>(data, flags);
  });
}

}  // namespace

int main() {
  sim::print_section(std::cout,
                     "Table 5: seg_plus_scan() dynamic instructions across LMUL "
                     "(VLEN=1024)");
  sim::Table t5({"N", "LMUL=1", "LMUL=2", "LMUL=4", "LMUL=8",
                 "paper(1)", "paper(2)*", "paper(4)", "paper(8)"});
  std::array<std::array<std::uint64_t, 4>, std::size(kPaper)> measured{};

  std::size_t r = 0;
  for (const auto& row : kPaper) {
    const auto flags = bench::random_head_flags(row.n, /*avg_len=*/100, /*seed=*/18);
    auto reference = bench::random_u32(row.n, /*seed=*/17);

    std::array<std::uint64_t, 4> cells{};
    std::array<std::vector<std::uint32_t>, 4> outs;
    for (std::size_t li = 0; li < kLmuls.size(); ++li) {
      outs[li] = bench::random_u32(row.n, /*seed=*/17);
      std::span<std::uint32_t> d(outs[li]);
      std::span<const std::uint32_t> f(flags);
      switch (kLmuls[li]) {
        case 1: cells[li] = run<1>(d, f); break;
        case 2: cells[li] = run<2>(d, f); break;
        case 4: cells[li] = run<4>(d, f); break;
        default: cells[li] = run<8>(d, f); break;
      }
      if (outs[li] != outs[0]) {
        std::cerr << "FATAL: LMUL=" << kLmuls[li] << " result differs at N=" << row.n << '\n';
        return 1;
      }
    }
    measured[r++] = cells;

    t5.add_row({std::to_string(row.n), sim::format_count(cells[0]),
                sim::format_count(cells[1]), sim::format_count(cells[2]),
                sim::format_count(cells[3]), sim::format_count(row.counts[0]),
                sim::format_count(row.counts[1]), sim::format_count(row.counts[2]),
                sim::format_count(row.counts[3])});
    static_cast<void>(reference);
  }
  t5.print(std::cout);
  std::cout << "* the paper's LMUL=2 column duplicates its Table 4 baseline "
               "column — a transcription error (see EXPERIMENTS.md).\n";

  sim::print_section(std::cout,
                     "Table 6: (speedup over LMUL=1) / LMUL efficiency ratio");
  sim::Table t6({"N", "LMUL=2", "LMUL=4", "LMUL=8"});
  for (std::size_t i = 0; i < std::size(kPaper); ++i) {
    const auto& cells = measured[i];
    const auto ratio = [&](std::size_t li) {
      const double speedup = static_cast<double>(cells[0]) / static_cast<double>(cells[li]);
      return sim::format_ratio(speedup / kLmuls[li], 4);
    };
    t6.add_row({std::to_string(kPaper[i].n), ratio(1), ratio(2), ratio(3)});
  }
  t6.print(std::cout);
  std::cout << "\nShape checks: LMUL=8 is worse than LMUL=1 at N=100 (spilling; "
               "paper: 2090 vs 331) and better at N=10^6 (paper: 728,586 vs "
               "2,562,539); the efficiency ratio falls as LMUL grows "
               "(paper Table 6).\n";
  return 0;
}
