// Reproduces Tables 5 and 6: segmented plus-scan across LMUL and the
// efficiency ratio.  Thin formatter over the table library
// (tables::table5_lmul_sweep(); Table 6 is derived at render time).
#include "tables/paper_tables.hpp"

int main(int argc, char** argv) {
  return rvvsvm::tables::table_main(argc, argv, "table5");
}
