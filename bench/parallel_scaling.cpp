// Hart-scaling sweep for the sharded execution engine (src/par).
//
// Measures emulated elements/sec of the two-level collectives — scan,
// reduce, split, bounded-key radix sort — as the hart count grows at a fixed
// shard size, for each VLEN, and writes the machine-readable
// BENCH_parallel.json (schema_version 2: per-cell hart/shard metadata plus
// per-hart and merged dynamic instruction counts).  The merged counts must
// be identical down every hart-count column: the engine's determinism
// invariant, checked here after the sweep so a broken invariant fails the
// bench run, not just the unit tests.
//
// Usage: parallel_scaling [--json FILE] [--n N] [--shard S] [--harts A,B,..]
//                         [--smoke]
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_runner.hpp"

namespace {

std::vector<unsigned> parse_list(const std::string& csv) {
  std::vector<unsigned> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(static_cast<unsigned>(std::stoul(item)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rvvsvm;

  bench::ParallelSweepOptions opt;
  std::string json_path = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--n" && i + 1 < argc) {
      opt.n = std::stoul(argv[++i]);
    } else if (arg == "--shard" && i + 1 < argc) {
      opt.shard_size = std::stoul(argv[++i]);
    } else if (arg == "--harts" && i + 1 < argc) {
      opt.hart_counts = parse_list(argv[++i]);
    } else if (arg == "--smoke") {
      // CI-sized run: small input, short windows, the VLEN extremes, and
      // enough shards (n / shard = 8) for every hart count to matter.
      opt.n = 1u << 12;
      opt.shard_size = 1u << 9;
      opt.min_seconds = 0.01;
      opt.vlens = {128, 1024};
      opt.hart_counts = {1, 2, 4};
    } else {
      std::cerr << "usage: parallel_scaling [--json FILE] [--n N] [--shard S] "
                   "[--harts A,B,...] [--smoke]\n";
      return 2;
    }
  }

  try {
    const auto results = bench::run_parallel_sweep(opt);
    bench::print_parallel_summary(results);
    bench::write_parallel_json(results, opt, json_path);
    std::cout << "\nwrote " << json_path << '\n';

    // Determinism invariant: merged counts must not move with hart count.
    for (const auto& r : results) {
      for (const auto& other : results) {
        if (r.kernel == other.kernel && r.vlen == other.vlen &&
            r.merged_instructions != other.merged_instructions) {
          std::cerr << "FAIL: merged instruction count depends on hart count ("
                    << r.kernel << " vlen=" << r.vlen << ": " << r.harts
                    << " harts -> " << r.merged_instructions << ", "
                    << other.harts << " harts -> " << other.merged_instructions
                    << ")\n";
          return 1;
        }
      }
    }
    std::cout << "merged counts hart-count-invariant: OK\n";
  } catch (const std::exception& e) {
    std::cerr << "parallel_scaling: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
