// Multi-hart parity: merged dynamic-instruction counts of the par::
// collectives at 1/2/4/8 harts — the engine's hart-count-invariance
// contract as a table.  Thin formatter over the table library
// (tables::par_parity()).
#include "tables/paper_tables.hpp"

int main(int argc, char** argv) {
  return rvvsvm::tables::table_main(argc, argv, "par_parity");
}
