// Reproduces Table 1: dynamic instruction counts of split radix sort (scan
// vector model on RVV) vs the stdlib-style qsort baseline, VLEN = 1024,
// LMUL = 1, N = 10^2 .. 10^6 of uniform random u32 keys.
#include <iostream>

#include "apps/radix_sort.hpp"
#include "bench/common.hpp"
#include "svm/baseline/qsort.hpp"

namespace {

using namespace rvvsvm;

struct PaperRow {
  std::size_t n;
  std::uint64_t radix;
  std::uint64_t qsort;
};
constexpr PaperRow kPaper[] = {
    {100, 23988, 17158},         {1000, 94842, 277480},
    {10000, 803690, 3470344},    {100000, 19603490, 43004753},
    {1000000, 195102988, 511107188},
};

}  // namespace

int main() {
  sim::print_section(std::cout,
                     "Table 1: split_radix_sort() vs qsort() — dynamic instructions "
                     "(VLEN=1024, LMUL=1)");
  sim::Table table({"N", "split_radix_sort()", "qsort()", "speedup",
                    "paper radix", "paper qsort", "paper speedup"});
  for (const auto& row : kPaper) {
    auto keys = bench::random_u32(row.n, /*seed=*/7);

    auto sorted = keys;
    const std::uint64_t radix = bench::count_instructions(1024, [&] {
      apps::split_radix_sort<std::uint32_t>(std::span<std::uint32_t>(sorted));
    });

    auto qsorted = keys;
    const std::uint64_t qsort = bench::count_instructions(1024, [&] {
      svm::baseline::qsort_u32(std::span<std::uint32_t>(qsorted));
    });

    if (sorted != qsorted) {
      std::cerr << "FATAL: sort outputs disagree at N=" << row.n << '\n';
      return 1;
    }

    table.add_row({std::to_string(row.n), sim::format_count(radix),
                   sim::format_count(qsort),
                   sim::format_ratio(static_cast<double>(qsort) / static_cast<double>(radix)),
                   sim::format_count(row.radix), sim::format_count(row.qsort),
                   sim::format_ratio(static_cast<double>(row.qsort) /
                                     static_cast<double>(row.radix))});
  }
  table.print(std::cout);
  std::cout << "\nShape check: vectorized radix sort loses at N=100 (paper: 0.72x)\n"
               "and wins for N >= 1000, as in the paper.\n";
  return 0;
}
