// Reproduces Table 1: dynamic instruction counts of split radix sort (scan
// vector model on RVV) vs the stdlib-style qsort baseline.  Thin formatter
// over the table library; the numbers come from tables::table1_radix_sort().
#include "tables/paper_tables.hpp"

int main(int argc, char** argv) {
  return rvvsvm::tables::table_main(argc, argv, "table1");
}
