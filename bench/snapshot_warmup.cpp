// snapshot_warmup — cold start vs snapshot restore across the VLEN sweep.
//
//   snapshot_warmup [--seed N] [--n N] [--reps N] [--vlen-list 128,256,512,1024]
//                   [--min-speedup X] [--json PATH] [--smoke]
//
// For each VLEN the bench measures, wall-clock, the two ways a machine
// reaches its warmed steady state:
//
//   * cold — construct a Machine and a fresh AutoTuner, then run the warmup
//     workload: two pinned passes of plus_scan / seg_plus_scan / reduce (so
//     strip-mine traces record and stabilize) plus one tuned call per scan
//     shape (so the autotuner pays its measurement misses on scratch
//     machines);
//
//   * restore — construct a Machine and a fresh AutoTuner, then read the
//     snapshot file a previous cold run saved and restore it.
//
// Both are best-of-N reps.  After the timed restore the bench verifies the
// warm-start contract before reporting: the restored ledger equals the cold
// machine's class-for-class, and the next tuned call replays the imported
// winner without re-measuring.  A cell that fails verification fails the
// bench regardless of its speedup.
//
// --min-speedup X turns the report into a CI gate applied at the largest
// VLEN (the paper's headline configuration).  --json writes the
// BENCH_snapshot.json contract.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "rvv/rvv.hpp"
#include "snap/snapshot.hpp"
#include "svm/svm.hpp"
#include "tune/autotuner.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace rvvsvm;
using T = std::uint32_t;

struct Options {
  std::uint64_t seed = 1;
  std::size_t n = 50000;
  std::size_t reps = 5;
  std::vector<unsigned> vlens{128, 256, 512, 1024};
  double min_speedup = 0.0;  ///< 0 = no gate
  std::string json_path;
  bool smoke = false;
};

struct Cell {
  unsigned vlen = 0;
  std::size_t n = 0;
  double cold_ms = 0.0;
  double restore_ms = 0.0;
  double speedup = 0.0;
  std::size_t snapshot_bytes = 0;
  std::size_t tuner_winners = 0;
  std::size_t traces = 0;
  bool verified = false;
};

std::vector<T> make_data(std::size_t n, std::uint64_t seed) {
  std::vector<T> v(n);
  std::uint64_t x = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (auto& e : v) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    e = static_cast<T>(x >> 33) & 0xFFFFu;
  }
  return v;
}

std::vector<T> make_flags(std::size_t n) {
  std::vector<T> flags(n, 0);
  if (n > 0) flags[0] = 1;
  for (std::size_t i = 97; i < n; i += 97) flags[i] = 1;
  return flags;
}

/// The warmup workload: everything a cold machine pays before it is "warm".
/// Two pinned passes stabilize the strip-mine traces; the tuned calls pay
/// the autotuner's measurement misses.
void warm(rvv::Machine& m, tune::AutoTuner& tuner, const std::vector<T>& data,
          const std::vector<T>& flags) {
  tune::TunerScope ts(tuner);
  rvv::MachineScope scope(m);
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<T> buf(data);
    svm::plus_scan<T, 2>(std::span<T>(buf));
    std::vector<T> seg(data);
    svm::seg_plus_scan<T, 2>(std::span<T>(seg), std::span<const T>(flags));
    static_cast<void>(
        svm::reduce<svm::PlusOp, T, 4>(std::span<const T>(data)));
  }
  std::vector<T> tuned_scan(data);
  svm::plus_scan<T>(std::span<T>(tuned_scan));
  std::vector<T> tuned_seg(data);
  svm::seg_plus_scan<T>(std::span<T>(tuned_seg), std::span<const T>(flags));
}

[[nodiscard]] bool same_counts(const sim::CountSnapshot& a,
                               const sim::CountSnapshot& b) {
  for (std::size_t i = 0; i < sim::kNumInstClasses; ++i) {
    const auto cls = static_cast<sim::InstClass>(i);
    if (a.count(cls) != b.count(cls)) return false;
  }
  return true;
}

Cell run_cell(const Options& opt, unsigned vlen, const std::string& snap_path) {
  Cell cell;
  cell.vlen = vlen;
  cell.n = opt.n;

  const rvv::Machine::Config cfg{.vlen_bits = vlen};
  const std::vector<T> data = make_data(opt.n, opt.seed + vlen);
  const std::vector<T> flags = make_flags(opt.n);

  // Cold path, best of reps.  The last rep's machine becomes the snapshot
  // source, saved outside any timed region.
  double cold_best_ms = 0.0;
  sim::CountSnapshot warmed_counts;
  for (std::size_t rep = 0; rep < opt.reps; ++rep) {
    const auto t0 = Clock::now();
    tune::AutoTuner tuner;
    rvv::Machine machine(cfg);
    warm(machine, tuner, data, flags);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (rep == 0 || ms < cold_best_ms) cold_best_ms = ms;
    if (rep + 1 == opt.reps) {
      warmed_counts = machine.counter().snapshot();
      const snap::Blob blob = snap::save_machine(machine, &tuner);
      cell.snapshot_bytes = blob.size();
      cell.tuner_winners = tuner.winners().size();
      cell.traces = machine.exec_cache().trace_count();
      snap::write_file(snap_path, blob);
    }
  }
  cell.cold_ms = cold_best_ms;

  // Restore path, best of reps: file read + parse + install.
  double restore_best_ms = 0.0;
  for (std::size_t rep = 0; rep < opt.reps; ++rep) {
    const auto t0 = Clock::now();
    tune::AutoTuner tuner;
    rvv::Machine machine(cfg);
    snap::restore_machine(machine, snap::read_file(snap_path), &tuner);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (rep == 0 || ms < restore_best_ms) restore_best_ms = ms;

    if (rep + 1 == opt.reps) {
      // Warm-start contract: ledger restored bit-identically, and the next
      // tuned call replays the imported winner without re-measuring.
      cell.verified = same_counts(machine.counter().snapshot(), warmed_counts);
      {
        tune::TunerScope ts(tuner);
        rvv::MachineScope scope(machine);
        std::vector<T> buf(data);
        svm::plus_scan<T>(std::span<T>(buf));
      }
      cell.verified = cell.verified && tuner.stats().measurements == 0 &&
                      tuner.stats().hits >= 1;
    }
  }
  cell.restore_ms = restore_best_ms;
  cell.speedup =
      cell.restore_ms > 0.0 ? cell.cold_ms / cell.restore_ms : 0.0;

  std::remove(snap_path.c_str());
  return cell;
}

std::string json_number(double v) {
  std::ostringstream os;
  os << std::setprecision(6) << v;
  return os.str();
}

void write_json(const std::vector<Cell>& cells, const Options& opt,
                bool pass, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "snapshot_warmup: cannot write " << path << "\n";
    std::exit(2);
  }
  const Cell& gated = cells.back();
  out << "{\n"
      << "  \"schema\": \"rvvsvm-bench-snapshot\",\n"
      << "  \"schema_version\": 1,\n"
      << "  \"seed\": " << opt.seed << ",\n"
      << "  \"n\": " << opt.n << ",\n"
      << "  \"reps\": " << opt.reps << ",\n"
      << "  \"summary\": {\n"
      << "    \"min_speedup_gate\": " << json_number(opt.min_speedup) << ",\n"
      << "    \"gated_vlen\": " << gated.vlen << ",\n"
      << "    \"gated_speedup\": " << json_number(gated.speedup) << ",\n"
      << "    \"pass\": " << (pass ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"vlen\": " << c.vlen << ", \"n\": " << c.n
        << ", \"cold_ms\": " << json_number(c.cold_ms)
        << ", \"restore_ms\": " << json_number(c.restore_ms)
        << ", \"speedup\": " << json_number(c.speedup)
        << ", \"snapshot_bytes\": " << c.snapshot_bytes
        << ", \"tuner_winners\": " << c.tuner_winners
        << ", \"traces\": " << c.traces
        << ", \"verified\": " << (c.verified ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void print_summary(const std::vector<Cell>& cells) {
  std::cout << std::left << std::setw(7) << "vlen" << std::right
            << std::setw(12) << "cold ms" << std::setw(12) << "restore ms"
            << std::setw(11) << "speedup" << std::setw(10) << "bytes"
            << std::setw(9) << "winners" << std::setw(8) << "traces"
            << std::setw(10) << "verified" << '\n';
  for (const Cell& c : cells) {
    std::cout << std::left << std::setw(7) << c.vlen << std::right
              << std::fixed << std::setw(12) << std::setprecision(3)
              << c.cold_ms << std::setw(12) << c.restore_ms << std::setw(10)
              << std::setprecision(1) << c.speedup << "x" << std::setw(10)
              << c.snapshot_bytes << std::setw(9) << c.tuner_winners
              << std::setw(8) << c.traces << std::setw(10)
              << (c.verified ? "yes" : "NO") << '\n';
  }
}

[[nodiscard]] bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t value = 0;
  for (const char ch : s) {
    if (ch < '0' || ch > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> std::string_view {
      if (i + 1 >= argc) {
        std::cerr << "snapshot_warmup: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    std::uint64_t v = 0;
    if (arg == "--seed") {
      if (!parse_u64(value(), opt.seed)) return 2;
    } else if (arg == "--n") {
      if (!parse_u64(value(), v) || v == 0) return 2;
      opt.n = v;
    } else if (arg == "--reps") {
      if (!parse_u64(value(), v) || v == 0) return 2;
      opt.reps = v;
    } else if (arg == "--vlen-list") {
      opt.vlens.clear();
      std::istringstream list{std::string(value())};
      std::string tok;
      while (std::getline(list, tok, ',')) {
        if (!parse_u64(tok, v) || v == 0) return 2;
        opt.vlens.push_back(static_cast<unsigned>(v));
      }
      if (opt.vlens.empty()) return 2;
    } else if (arg == "--min-speedup") {
      try {
        opt.min_speedup = std::stod(std::string(value()));
      } catch (...) {
        return 2;
      }
    } else if (arg == "--json") {
      opt.json_path = std::string(value());
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: snapshot_warmup [--seed N] [--n N] [--reps N]\n"
                   "                       [--vlen-list 128,256,512,1024]\n"
                   "                       [--min-speedup X] [--json PATH]\n"
                   "                       [--smoke]\n";
      return 0;
    } else {
      std::cerr << "snapshot_warmup: unknown option " << arg << "\n";
      return 2;
    }
  }
  if (opt.smoke) {
    opt.n = std::min<std::size_t>(opt.n, 8000);
    opt.reps = std::min<std::size_t>(opt.reps, 2);
  }

  const std::string snap_path =
      opt.json_path.empty() ? "snapshot_warmup.tmp.snap"
                            : opt.json_path + ".tmp.snap";

  std::vector<Cell> cells;
  for (const unsigned vlen : opt.vlens) {
    std::cout << "snapshot_warmup: VLEN " << vlen << ", n " << opt.n
              << ", best of " << opt.reps << "...\n";
    cells.push_back(run_cell(opt, vlen, snap_path));
  }

  int rc = 0;
  for (const Cell& c : cells) {
    if (!c.verified) {
      std::cerr << "snapshot_warmup: FAIL — restored machine at VLEN "
                << c.vlen << " failed the warm-start contract\n";
      rc = 1;
    }
  }
  // The speedup gate applies at the largest VLEN (the headline config).
  const Cell& gated = cells.back();
  if (opt.min_speedup > 0.0 && gated.speedup < opt.min_speedup) {
    std::cerr << "snapshot_warmup: FAIL — restore speedup "
              << json_number(gated.speedup) << "x at VLEN " << gated.vlen
              << " below gate " << json_number(opt.min_speedup) << "x\n";
    rc = 1;
  }

  print_summary(cells);
  if (!opt.json_path.empty()) {
    write_json(cells, opt, rc == 0, opt.json_path);
  }
  return rc;
}
