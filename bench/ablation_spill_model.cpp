// Ablation: how much of the LMUL=8 cost is register spilling?  Thin
// formatter over the table library (tables::ablation_spill_model()).
#include "tables/paper_tables.hpp"

int main(int argc, char** argv) {
  return rvvsvm::tables::table_main(argc, argv, "ablation_spill");
}
