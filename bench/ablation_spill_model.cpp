// Ablation: how much of the LMUL=8 cost is register spilling?
//
// Runs the Table 5 sweep twice — once with the register-file pressure model
// enabled (the default, matching a real compiler's spill code) and once with
// it disabled (pure instruction semantics, as if the machine had unlimited
// vector registers).  The gap is exactly the spill/reload traffic; without
// it, larger LMUL would always look better, which is the naive expectation
// the paper's section 6.3 corrects.
#include <array>
#include <iostream>

#include "bench/common.hpp"
#include "svm/segmented.hpp"

namespace {

using namespace rvvsvm;

struct Cell {
  std::uint64_t total = 0;
  std::uint64_t spill_traffic = 0;  // kVectorSpill + kVectorReload
};

template <unsigned LMUL>
Cell run(std::size_t n, bool pressure) {
  auto data = bench::random_u32(n, /*seed=*/17);
  const auto flags = bench::random_head_flags(n, /*avg_len=*/100, /*seed=*/18);
  rvv::Machine machine(rvv::Machine::Config{.vlen_bits = 1024,
                                            .model_register_pressure = pressure});
  rvv::MachineScope scope(machine);
  const auto before = machine.counter().snapshot();
  svm::seg_plus_scan<std::uint32_t, LMUL>(std::span<std::uint32_t>(data),
                                          std::span<const std::uint32_t>(flags));
  const auto delta = machine.counter().snapshot() - before;
  return {delta.total(), delta.spill_total()};
}

}  // namespace

int main() {
  sim::print_section(std::cout,
                     "Ablation: seg_plus_scan with and without the register-file "
                     "pressure model (VLEN=1024)");
  sim::Table table({"N", "LMUL", "with model", "spill+reload instrs",
                    "model off (infinite regs)", "overhead"});
  for (const std::size_t n : {std::size_t{100}, std::size_t{10000}, std::size_t{1000000}}) {
    const std::array<std::array<Cell, 2>, 4> cells = {{
        {run<1>(n, true), run<1>(n, false)},
        {run<2>(n, true), run<2>(n, false)},
        {run<4>(n, true), run<4>(n, false)},
        {run<8>(n, true), run<8>(n, false)},
    }};
    constexpr std::array<unsigned, 4> lmuls{1, 2, 4, 8};
    for (std::size_t i = 0; i < 4; ++i) {
      const auto [with, without] = std::pair{cells[i][0], cells[i][1]};
      table.add_row({std::to_string(n), std::to_string(lmuls[i]),
                     sim::format_count(with.total),
                     sim::format_count(with.spill_traffic),
                     sim::format_count(without.total),
                     sim::format_ratio(static_cast<double>(with.total) /
                                           static_cast<double>(without.total),
                                       3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading the columns: LMUL in {1, 2, 4} retires zero spill "
               "instructions — the remaining ~10% gap versus the model-off run "
               "is the vmv-to-v0 mask materialization the model also accounts "
               "for, identical across LMUL.  Only LMUL=8 adds real spill/reload "
               "traffic; that traffic is the entire Table 5 anomaly.\n";
  return 0;
}
